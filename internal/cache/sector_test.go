package cache

import (
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

func sectorRig(t *testing.T) (*bus.Bus, *memory.Memory, *SectorCache, *Cache) {
	t.Helper()
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	sc := NewSector(0, b, protocols.MOESI(), SectorConfig{Sets: 2, Ways: 2, SubSectors: 4})
	pc := New(1, b, protocols.MOESI(), smallCfg())
	return b, mem, sc, pc
}

// TestSectorBasicRW: read/write hits and sub-sector fills.
func TestSectorBasicRW(t *testing.T) {
	_, _, sc, _ := sectorRig(t)
	if err := sc.WriteWord(0, 0, 0x11); err != nil {
		t.Fatal(err)
	}
	v, err := sc.ReadWord(0, 0)
	if err != nil || v != 0x11 {
		t.Fatalf("read %#x, %v", v, err)
	}
	st := sc.Stats()
	if st.SectorMisses != 1 || st.ReadHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestSectorSubFill: lines of one sector fill independently — the
// second sub-sector is a SubMiss, not a SectorMiss.
func TestSectorSubFill(t *testing.T) {
	b, _, sc, _ := sectorRig(t)
	if _, err := sc.ReadWord(0, 0); err != nil { // sector miss, fetch sub 0
		t.Fatal(err)
	}
	before := b.Stats().Transactions
	if _, err := sc.ReadWord(1, 0); err != nil { // same sector, sub 1
		t.Fatal(err)
	}
	if got := b.Stats().Transactions - before; got != 1 {
		t.Errorf("sub fill used %d transactions", got)
	}
	st := sc.Stats()
	if st.SectorMisses != 1 || st.SubMisses != 1 {
		t.Errorf("stats %+v", st)
	}
	// States are per sub-sector: subs 0,1 valid, 2,3 invalid.
	if sc.State(0) == core.Invalid || sc.State(1) == core.Invalid {
		t.Error("filled subs invalid")
	}
	if sc.State(2) != core.Invalid || sc.State(3) != core.Invalid {
		t.Error("unfetched subs valid")
	}
}

// TestSectorEvictionFlushesDirtySubs: a sector conflict pushes every
// owned sub-sector.
func TestSectorEvictionFlushesDirtySubs(t *testing.T) {
	_, mem, sc, _ := sectorRig(t)
	// Sector 0 (lines 0-3): dirty two subs.
	if err := sc.WriteWord(0, 0, 0xA0); err != nil {
		t.Fatal(err)
	}
	if err := sc.WriteWord(2, 0, 0xA2); err != nil {
		t.Fatal(err)
	}
	// Sectors 2 and 4 map to the same set (Sets=2, sector index = tag%2):
	// sector tags 0,2,4 are all even → set 0. Two more allocations evict
	// sector 0.
	if _, err := sc.ReadWord(8, 0); err != nil { // sector 2
		t.Fatal(err)
	}
	if _, err := sc.ReadWord(16, 0); err != nil { // sector 4
		t.Fatal(err)
	}
	if sc.State(0) != core.Invalid || sc.State(2) != core.Invalid {
		t.Fatal("sector 0 still resident")
	}
	st := sc.Stats()
	if st.SectorEvictions != 1 || st.DirtySubEvictions != 2 {
		t.Errorf("stats %+v", st)
	}
	if mem.Peek(0)[0] != 0xA0 || mem.Peek(2)[0] != 0xA2 {
		t.Error("dirty subs not written back")
	}
	// Data survives the round trip.
	if v, err := sc.ReadWord(0, 0); err != nil || v != 0xA0 {
		t.Fatalf("read back %#x, %v", v, err)
	}
}

// TestSectorCoherentWithPlainCache: sub-sector states obey the same
// protocol as line states — intervention, updates, invalidations all
// work between a sector cache and a plain cache.
func TestSectorCoherentWithPlainCache(t *testing.T) {
	_, _, sc, pc := sectorRig(t)

	// Sector cache dirties a line; plain cache reads it (intervention).
	if err := sc.WriteWord(1, 0, 0x77); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, pc, 1, 0); v != 0x77 {
		t.Fatalf("plain cache read %#x", v)
	}
	if sc.State(1) != core.Owned {
		t.Errorf("sector sub state %s after supplying", sc.State(1))
	}
	if st := sc.Stats(); st.InterventionsSupplied != 1 {
		t.Errorf("interventions %d", st.InterventionsSupplied)
	}

	// Plain cache broadcasts a write (MOESI preferred): the sector sub
	// updates in place.
	mustWrite(t, pc, 1, 1, 0x88)
	if v, err := sc.ReadWord(1, 1); err != nil || v != 0x88 {
		t.Fatalf("sector update lost: %#x, %v", v, err)
	}
	if st := sc.Stats(); st.UpdatesReceived != 1 {
		t.Errorf("updates %d", st.UpdatesReceived)
	}

	// An RFO from the plain cache invalidates just that sub-sector.
	if err := sc.WriteWord(2, 0, 1); err != nil { // neighbours stay valid
		t.Fatal(err)
	}
	pcInv := New(2, sc.bus, protocols.MOESIInvalidate(), smallCfg())
	mustWrite(t, pcInv, 1, 0, 0x99)
	if sc.State(1) != core.Invalid {
		t.Errorf("sub 1 state %s after foreign RFO", sc.State(1))
	}
	if sc.State(2) == core.Invalid {
		t.Error("neighbour sub invalidated too — consistency state must be per sub-sector")
	}
}

// TestSectorWithConsistencyChecker: the checker invariants hold over a
// mixed sector/plain system via ForEachLine.
func TestSectorWithConsistencyChecker(t *testing.T) {
	_, mem, sc, pc := sectorRig(t)
	for i := 0; i < 200; i++ {
		addr := bus.Addr(i % 12)
		if i%3 == 0 {
			if err := sc.WriteWord(addr, i%8, uint32(i+1)); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := pc.ReadWord(addr, i%8); err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				mustWrite(t, pc, addr, (i+1)%8, uint32(i+7))
			}
		}
	}
	// Manual invariant pass: per line, unique ownership and identical
	// copies between the two organisations.
	type cp struct {
		state core.State
		data  []byte
	}
	lines := map[bus.Addr][]cp{}
	sc.ForEachLine(func(a bus.Addr, s core.State, d []byte) { lines[a] = append(lines[a], cp{s, d}) })
	pc.ForEachLine(func(a bus.Addr, s core.State, d []byte) { lines[a] = append(lines[a], cp{s, d}) })
	for addr, copies := range lines {
		owners := 0
		for _, c := range copies {
			if c.state.OwnedCopy() {
				owners++
			}
		}
		if owners > 1 {
			t.Errorf("line %#x: %d owners", uint64(addr), owners)
		}
		for _, c := range copies[1:] {
			for i := range c.data {
				if c.data[i] != copies[0].data[i] {
					t.Errorf("line %#x: divergent copies", uint64(addr))
					break
				}
			}
		}
		if owners == 0 {
			m := mem.Peek(addr)
			for i := range m {
				if copies[0].data[i] != m[i] {
					t.Errorf("line %#x: unowned copy differs from memory", uint64(addr))
					break
				}
			}
		}
	}
}

// TestSectorCleanCommand: CmdClean pushes an owned sub-sector.
func TestSectorCleanCommand(t *testing.T) {
	b, mem, sc, _ := sectorRig(t)
	if err := sc.WriteWord(3, 0, 0xEE); err != nil {
		t.Fatal(err)
	}
	if err := CleanLine(b, 99, 3); err != nil {
		t.Fatal(err)
	}
	if mem.Peek(3)[0] != 0xEE {
		t.Error("clean did not flush the sub-sector")
	}
	if sc.State(3).OwnedCopy() {
		t.Errorf("still owned after clean: %s", sc.State(3))
	}
}

// TestSectorGeometryPanics: invalid geometry is rejected.
func TestSectorGeometryPanics(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	NewSector(0, b, protocols.MOESI(), SectorConfig{Sets: 1, Ways: 1, SubSectors: 0})
}
