package cache

import (
	"reflect"
	"testing"
)

// TestStatsAddCoversEveryField: Add must accumulate every counter in
// Stats — a new field that Add forgets would silently vanish from
// aggregated metrics. The test fills every int64 field (and the
// transition matrix) via reflection with distinct values, adds, and
// checks the sums, so it fails when a field is added without updating
// Add.
func TestStatsAddCoversEveryField(t *testing.T) {
	fill := func(mult int64) Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Int64:
				f.SetInt(int64(i+1) * mult)
			case reflect.Array: // Transitions
				for from := 0; from < f.Len(); from++ {
					row := f.Index(from)
					for to := 0; to < row.Len(); to++ {
						row.Index(to).SetInt(int64(from*10+to+1) * mult)
					}
				}
			default:
				t.Fatalf("Stats field %s has unhandled kind %s — extend Add and this test", v.Type().Field(i).Name, f.Kind())
			}
		}
		return s
	}

	a, b, want := fill(1), fill(2), fill(3)
	a.Add(b)
	if a != want {
		t.Errorf("Add dropped a field:\n got %+v\nwant %+v", a, want)
	}
}

// TestSectorStatsAsStats: the conversion derives misses and maps the
// sector-specific eviction counters onto their plain-cache analogues.
func TestSectorStatsAsStats(t *testing.T) {
	s := SectorStats{
		Reads: 100, Writes: 40,
		ReadHits: 90, WriteHits: 30,
		SubMisses: 12, SectorMisses: 8,
		SectorEvictions: 5, DirtySubEvictions: 3,
		SnoopHits: 7, InvalidationsReceived: 2,
		UpdatesReceived: 4, InterventionsSupplied: 1,
		StallNanos: 12345,
	}
	got := s.AsStats()
	want := Stats{
		Reads: 100, Writes: 40,
		ReadHits: 90, WriteHits: 30,
		ReadMisses: 10, WriteMisses: 10,
		Replacements: 5, DirtyEvictions: 3,
		SnoopHits: 7, InvalidationsReceived: 2,
		UpdatesReceived: 4, InterventionsSupplied: 1,
		StallNanos: 12345,
	}
	if got != want {
		t.Errorf("AsStats:\n got %+v\nwant %+v", got, want)
	}
}
