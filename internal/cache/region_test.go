package cache

import (
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// clipperRig builds the §3.4 CLIPPER configuration: one cache whose
// address space is split into copy-back (default), write-through
// [0x100, 0x200) and uncacheable [0x200, 0x300) regions.
func clipperRig(t *testing.T) (*bus.Bus, *memory.Memory, *Cache) {
	t.Helper()
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	cfg := smallCfg()
	cfg.Regions = []Region{
		{Start: 0x100, End: 0x200, Policy: protocols.WriteThrough(protocols.WriteThroughConfig{})},
		{Start: 0x200, End: 0x300, Policy: protocols.NonCaching(false)},
	}
	c := New(0, b, protocols.MOESI(), cfg)
	return b, mem, c
}

// TestRegionCopyBackDefault: addresses outside every region behave
// copy-back — silent dirty writes, memory stale until eviction.
func TestRegionCopyBackDefault(t *testing.T) {
	_, mem, c := clipperRig(t)
	mustWrite(t, c, 0x10, 0, 0xAA)
	if c.State(0x10) != core.Modified {
		t.Errorf("copy-back region state %s", c.State(0x10))
	}
	if mem.Peek(0x10)[0] == 0xAA {
		t.Error("copy-back write reached memory immediately")
	}
}

// TestRegionWriteThrough: the WT page never owns; every write reaches
// memory at once.
func TestRegionWriteThrough(t *testing.T) {
	_, mem, c := clipperRig(t)
	// Write miss: non-allocating, straight past the cache.
	mustWrite(t, c, 0x110, 0, 0xBB)
	if c.Contains(0x110) {
		t.Error("non-allocating WT write miss allocated a line")
	}
	if mem.Peek(0x110)[0] != 0xBB {
		t.Error("write-through region write did not reach memory")
	}
	// Read allocates V (≡S); the write hit then writes through and
	// keeps the line valid.
	if v := mustRead(t, c, 0x110, 0); v != 0xBB {
		t.Fatalf("read back %#x", v)
	}
	if st := c.State(0x110); st != core.Shared {
		t.Errorf("WT region state %s, want S (V)", st)
	}
	mustWrite(t, c, 0x110, 1, 0xBC)
	if st := c.State(0x110); st != core.Shared {
		t.Errorf("WT state after hit write %s", st)
	}
	if mem.Peek(0x110)[4] != 0xBC {
		t.Error("WT hit write did not reach memory")
	}
}

// TestRegionUncacheable: the uncacheable page is never allocated and
// does not disturb resident lines.
func TestRegionUncacheable(t *testing.T) {
	b, mem, c := clipperRig(t)
	// Prime the cache with lines mapping to the same sets as 0x200.
	mustRead(t, c, 0x0, 0)
	mustRead(t, c, 0x4, 0)

	mustWrite(t, c, 0x200, 0, 0xCC)
	if c.Contains(0x200) {
		t.Error("uncacheable write allocated a line")
	}
	if mem.Peek(0x200)[0] != 0xCC {
		t.Error("uncacheable write lost")
	}
	before := b.Stats().Reads
	if v := mustRead(t, c, 0x200, 0); v != 0xCC {
		t.Errorf("uncacheable read %#x", v)
	}
	if c.Contains(0x200) {
		t.Error("uncacheable read allocated a line")
	}
	if b.Stats().Reads != before+1 {
		t.Error("uncacheable read did not use the bus")
	}
	// The resident copy-back lines survived (no victim was taken).
	if !c.Contains(0x0) || !c.Contains(0x4) {
		t.Error("uncacheable access evicted resident lines")
	}
	// Every uncacheable read goes to the bus again.
	if _, err := c.ReadWord(0x200, 0); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Reads != before+2 {
		t.Error("second uncacheable read was served locally")
	}
}

// TestRegionsCoherentAcrossBoards: a CLIPPER-style cache and a plain
// MOESI cache share all three regions consistently.
func TestRegionsCoherentAcrossBoards(t *testing.T) {
	b, mem, c := clipperRig(t)
	plain := New(1, b, protocols.MOESI(), smallCfg())

	// Copy-back region: normal MOESI interplay.
	mustWrite(t, c, 0x20, 0, 1)
	if v := mustRead(t, plain, 0x20, 0); v != 1 {
		t.Errorf("copy-back interplay: %d", v)
	}
	// WT region: the plain cache's copy is captured/invalidated per
	// column 9 when the CLIPPER writes through.
	mustRead(t, plain, 0x120, 0)
	mustWrite(t, c, 0x120, 0, 2)
	if plain.Contains(0x120) {
		t.Error("plain S copy survived a column 9 write-through")
	}
	if v := mustRead(t, plain, 0x120, 0); v != 2 {
		t.Errorf("WT interplay: %d", v)
	}
	// Uncacheable region: the plain cache may own the line; the
	// CLIPPER's uncached read is served by intervention.
	mustWrite(t, plain, 0x210, 0, 3)
	if v := mustRead(t, c, 0x210, 0); v != 3 {
		t.Errorf("uncacheable read through owner: %d", v)
	}
	if plain.State(0x210) != core.Modified {
		t.Errorf("owner state after col 7: %s", plain.State(0x210))
	}
	_ = mem
}

// TestRegionWouldUseBus: the predictor follows the per-region policy.
func TestRegionWouldUseBus(t *testing.T) {
	_, _, c := clipperRig(t)
	mustRead(t, c, 0x110, 0) // WT region, now V
	if !c.WouldUseBus(0x110, true) {
		t.Error("WT write predicted silent")
	}
	if c.WouldUseBus(0x110, false) {
		t.Error("WT read hit predicted as bus access")
	}
	if !c.WouldUseBus(0x200, false) {
		t.Error("uncacheable read predicted as hit")
	}
}
