package cache

import (
	"bytes"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// Conformance harness: for EVERY registered protocol, EVERY table cell
// is exercised against the concrete cache engine — the cache is forced
// into the cell's state, the cell's event is fired, and the resulting
// state must equal the table's preferred action resolved with the
// actual CH environment. This pins the engine to the tables: a
// transition bug anywhere in the client or snoop paths fails the exact
// cell it breaks.

// chFromMOESISharer says whether a MOESI cache holding S asserts CH on
// each bus column (it is the "environment" cache B below).
func chFromMOESISharer(col core.BusEvent) bool {
	switch col {
	case core.BusCacheRead, core.BusPlainRead,
		core.BusCacheBroadcastWrite, core.BusPlainBroadcastWrite:
		return true
	default: // columns 6 and 9 invalidate B silently
		return false
	}
}

// expectedAfterSnoop computes the table-predicted state after snooping
// one transaction of the given column (following one BS abort/retry
// round if the preferred action aborts).
func expectedAfterSnoop(tbl *core.Table, s core.State, col core.BusEvent, otherCH bool) (core.State, bool) {
	a, ok := tbl.PreferredSnoop(s, col)
	if !ok {
		return 0, false
	}
	if a.Abort != nil {
		mid := a.Abort.Next
		if !mid.Valid() {
			return core.Invalid, true
		}
		a2, ok := tbl.PreferredSnoop(mid, col)
		if !ok || a2.Abort != nil {
			return 0, false
		}
		return a2.Next.Resolve(otherCH), true
	}
	return a.Next.Resolve(otherCH), true
}

// expectedAfterLocal computes the table-predicted state after a local
// event, resolving CH against whether a MOESI sharer (B) is present.
func expectedAfterLocal(tbl *core.Table, s core.State, e core.LocalEvent, haveB bool) (core.State, bool) {
	a, ok := tbl.PreferredLocal(s, e)
	if !ok {
		return 0, false
	}
	resolveWith := func(act core.LocalAction) core.State {
		if !act.NeedsBus() {
			return act.Next.Resolve(false)
		}
		ch := haveB && chFromMOESISharer(core.ClassifyBusEvent(act.Assert))
		return act.Next.Resolve(ch)
	}
	if a.Op != core.BusReadThenWrite {
		return resolveWith(a), true
	}
	// Read>Write: the read-miss action, then the write action on the
	// resulting state.
	rm, ok := tbl.PreferredLocal(core.Invalid, core.LocalRead)
	if !ok {
		return 0, false
	}
	mid := resolveWith(rm)
	wa, ok := tbl.PreferredLocal(mid, core.LocalWrite)
	if !ok || wa.Op == core.BusReadThenWrite {
		return 0, false
	}
	return resolveWith(wa), true
}

// memImage is the slice of memory the harness needs for cell setup.
type memImage interface {
	WriteLine(addr bus.Addr, data []byte)
}

// conformanceRig builds a fresh fabric (a single bus, or an interleaved
// backplane when shards > 1) with the protocol under test (A), a MOESI
// environment cache (B, optional), and a raw master id.
func conformanceRig(t *testing.T, name string, withB bool, shards int, tenure string) (bus.Fabric, memImage, *Cache, *Cache) {
	t.Helper()
	cfg := bus.Config{LineSize: testLineSize}
	if tenure != "" && tenure != "atomic" {
		tp, err := bus.NewTenure(tenure, 0)
		if err != nil {
			t.Fatal(err)
		}
		disc, err := bus.NewDiscipline("rr")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Tenure, cfg.Discipline = tp, disc
	}
	var b bus.Fabric
	var mem memImage
	if shards == 1 {
		m := memory.New(testLineSize)
		b = bus.New(m, cfg)
		mem = m
	} else {
		m := memory.NewSharded(testLineSize, shards, 1)
		b = bus.NewInterleaved(m.Ports(), bus.InterleavedConfig{
			Config: cfg, Shards: shards, Granularity: 1,
		})
		mem = m
	}
	p, err := protocols.New(name)
	if err != nil {
		t.Fatal(err)
	}
	a := New(0, b, p, Config{Sets: 8, Ways: 2})
	var envB *Cache
	if withB {
		envB = New(1, b, protocols.MOESI(), Config{Sets: 8, Ways: 2})
	}
	return b, mem, a, envB
}

// conformanceShards are the fabric shapes every cell is verified on:
// the protocol engine must be bit-for-bit table-conformant whether the
// line's serialisation point is a single bus or one shard of an
// interleaved backplane.
var conformanceShards = []int{1, 2, 4}

// conformanceTenures: every cell must resolve identically whether the
// bus holds one atomic tenure per transaction or splits the data phase
// into a separate tenure — the tenure policy is timing, never protocol.
var conformanceTenures = []string{"atomic", "split"}

// conformanceProtocols are the deterministic cached protocols (the
// dynamic choosers pick a different legal action per draw, so they have
// no single predicted result).
var conformanceProtocols = []string{
	"moesi", "moesi-invalidate", "moesi-update", "berkeley", "dragon",
	"illinois", "write-once", "firefly", "synapse",
	"write-through", "write-through-broadcast",
}

// TestSnoopConformance: every (state × bus column × CH environment)
// cell of every protocol, against the live engine.
func TestSnoopConformance(t *testing.T) {
	const addr = bus.Addr(0x30)
	lineData := bytes.Repeat([]byte{0x5A}, testLineSize)

	checked := 0
	for _, nsh := range conformanceShards {
		for _, name := range conformanceProtocols {
			p, err := protocols.New(name)
			if err != nil {
				t.Fatal(err)
			}
			tbl := p.Table()
			for _, s := range tbl.States {
				if !s.Valid() {
					continue
				}
				for _, col := range tbl.BusEvents {
					for _, withB := range []bool{false, true} {
						otherCH := withB && chFromMOESISharer(col)
						want, ok := expectedAfterSnoop(tbl, s, col, otherCH)
						if !ok {
							continue
						}
						// An exclusive A alongside a sharing B is not a
						// reachable configuration; skip the contradictory
						// setup (the CH value would be meaningless).
						if withB && s.ExclusiveCopy() {
							continue
						}
						for _, ten := range conformanceTenures {
							_, mem, a, envB := conformanceRig(t, name, withB, nsh, ten)
							if !s.OwnedCopy() {
								// Unowned states must match the owner; with no
								// owner the image is memory.
								mem.WriteLine(addr, lineData)
							}
							a.forceLine(addr, s, lineData)
							if envB != nil {
								envB.forceLine(addr, core.Shared, lineData)
							}

							tx := &bus.Transaction{MasterID: 9, Signals: col.Signals(), Addr: addr}
							switch col {
							case core.BusCacheRead, core.BusPlainRead:
								tx.Op = core.BusRead
							case core.BusCacheRFO:
								tx.Op = core.BusAddrOnly
							default:
								tx.Op = core.BusWrite
								tx.Partial = &bus.PartialWrite{Word: 0, Val: 0x77}
							}
							if _, err := a.bus.Execute(tx); err != nil {
								t.Fatalf("%s state %s col %d (B=%t, shards=%d, tenure=%s): %v", name, s.Letter(), col.Column(), withB, nsh, ten, err)
							}
							if got := a.State(addr); got != want {
								t.Errorf("%s: state %s, col %d, B=%t, shards=%d, tenure=%s: engine went to %s, table says %s",
									name, s.Letter(), col.Column(), withB, nsh, ten, got.Letter(), want.Letter())
							}
							checked++
						}
					}
				}
			}
		}
	}
	if checked < 600 {
		t.Fatalf("only %d snoop cells checked — the harness is skipping too much", checked)
	}
	t.Logf("%d snoop cells verified against the engine", checked)
}

// TestLocalConformance: every (state × local event × CH environment)
// cell of every protocol.
func TestLocalConformance(t *testing.T) {
	const addr = bus.Addr(0x31)
	lineData := bytes.Repeat([]byte{0x6B}, testLineSize)

	checked := 0
	for _, nsh := range conformanceShards {
		for _, name := range conformanceProtocols {
			p, err := protocols.New(name)
			if err != nil {
				t.Fatal(err)
			}
			tbl := p.Table()
			states := append([]core.State{}, tbl.States...)
			for _, s := range states {
				for _, e := range tbl.LocalEvents {
					for _, withB := range []bool{false, true} {
						want, ok := expectedAfterLocal(tbl, s, e, withB)
						if !ok {
							continue
						}
						if withB && s.ExclusiveCopy() {
							continue
						}
						for _, ten := range conformanceTenures {
							_, mem, a, envB := conformanceRig(t, name, withB, nsh, ten)
							if !s.OwnedCopy() {
								mem.WriteLine(addr, lineData)
							}
							if s.Valid() {
								a.forceLine(addr, s, lineData)
							}
							if envB != nil {
								envB.forceLine(addr, core.Shared, lineData)
							}

							switch e {
							case core.LocalRead:
								_, err = a.ReadWord(addr, 0)
							case core.LocalWrite:
								err = a.WriteWord(addr, 0, 0x99)
							case core.Pass:
								err = a.Pass(addr)
							case core.Flush:
								err = a.Flush(addr)
							}
							if err != nil {
								t.Fatalf("%s state %s %s (B=%t, shards=%d, tenure=%s): %v", name, s.Letter(), e, withB, nsh, ten, err)
							}
							if got := a.State(addr); got != want {
								t.Errorf("%s: state %s, %s, B=%t, shards=%d, tenure=%s: engine went to %s, table says %s",
									name, s.Letter(), e, withB, nsh, ten, got.Letter(), want.Letter())
							}
							checked++
						}
					}
				}
			}
		}
	}
	if checked < 300 {
		t.Fatalf("only %d local cells checked — the harness is skipping too much", checked)
	}
	t.Logf("%d local cells verified against the engine", checked)
}
