package cache

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// This file is the processor side of the cache. The locking discipline
// (see the package comment) is:
//
//   - a shard's directory lock is never held while waiting for the bus
//     arbiter;
//   - nor across ExecuteHeld, because a BS abort can trigger a nested
//     recovery push that snoops *this* cache (we master the aborted
//     transaction, not the push). While we hold the bus shard, only
//     our own transactions on it and their nested recoveries run, so
//     the directory state we computed under the lock cannot be changed
//     by any other master in the window where it is released — every
//     transaction touching this line serialises through the shard we
//     hold.

// ReadWord performs a processor read of one 32-bit word.
func (c *Cache) ReadWord(addr bus.Addr, wordIdx int) (uint32, error) {
	if err := c.checkWord(wordIdx); err != nil {
		return 0, err
	}
	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.Reads++
	if l := c.lookup(addr); l != nil {
		// Read hit: every protocol in the class keeps the state (the
		// Read column of Table 1 is the identity on valid states).
		action, ok := c.policyFor(addr).ChooseLocal(l.state, core.LocalRead)
		if !ok || action.NeedsBus() {
			sh.mu.Unlock()
			return 0, fmt.Errorf("cache %d (%s): no local read action for state %s", c.id, c.policyFor(addr).Name(), l.state)
		}
		c.setState(sh, l, action.Next.Resolve(false), "read-hit")
		c.touch(sh, l)
		v := word(l.data, wordIdx)
		sh.stats.ReadHits++
		sh.mu.Unlock()
		return v, nil
	}
	sh.stats.ReadMisses++
	sh.mu.Unlock()

	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)
	data, _, err := c.fillLine(addr, core.LocalRead)
	if err != nil {
		return 0, err
	}
	return word(data, wordIdx), nil
}

// WriteWord performs a processor write of one 32-bit word.
func (c *Cache) WriteWord(addr bus.Addr, wordIdx int, val uint32) error {
	if err := c.checkWord(wordIdx); err != nil {
		return err
	}
	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.Writes++
	l := c.lookup(addr)
	if l != nil {
		action, ok := c.policyFor(addr).ChooseLocal(l.state, core.LocalWrite)
		if !ok {
			st := l.state
			sh.mu.Unlock()
			return fmt.Errorf("cache %d (%s): no local write action for state %s", c.id, c.policyFor(addr).Name(), st)
		}
		if !action.NeedsBus() {
			// Silent write: M stays M, E goes to M (the M/E pair of
			// Figure 4 — no other copy can exist).
			c.setState(sh, l, action.Next.Resolve(false), "silent-write")
			putWord(l.data, wordIdx, val)
			c.touch(sh, l)
			sh.stats.WriteHits++
			c.noteWrite(addr, wordIdx, val)
			sh.mu.Unlock()
			return nil
		}
	}
	sh.mu.Unlock()

	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)
	return c.writeHeld(addr, wordIdx, val)
}

// writeHeld performs a write while the caller holds addr's bus shard,
// re-examining the directory first: while the caller waited for the
// arbiter, another master may have invalidated or downgraded the copy.
func (c *Cache) writeHeld(addr bus.Addr, wordIdx int, val uint32) error {
	sh := c.shard(addr)
	sh.mu.Lock()
	if c.lookup(addr) == nil {
		sh.mu.Unlock()
		return c.writeMiss(addr, wordIdx, val)
	}
	sh.stats.WriteHits++
	return c.writeHitBus(addr, wordIdx, val) // unlocks the shard
}

// writeHitBus handles a write hit that needs the bus (states S and O:
// the S/O pair of Figure 4 — other copies may exist, so the change must
// be broadcast or the other copies invalidated). Called with the bus
// held and addr's shard locked; it unlocks the shard.
func (c *Cache) writeHitBus(addr bus.Addr, wordIdx int, val uint32) error {
	sh := c.shard(addr)
	l := c.lookup(addr)
	action, ok := c.policyFor(addr).ChooseLocal(l.state, core.LocalWrite)
	if !ok {
		st := l.state
		sh.mu.Unlock()
		return fmt.Errorf("cache %d (%s): no local write action for state %s", c.id, c.policyFor(addr).Name(), st)
	}
	if !action.NeedsBus() {
		// The state improved (e.g. everyone else was invalidated)
		// while we waited for the bus.
		c.setState(sh, l, action.Next.Resolve(false), "write-hit")
		putWord(l.data, wordIdx, val)
		c.touch(sh, l)
		c.noteWrite(addr, wordIdx, val)
		sh.mu.Unlock()
		return nil
	}
	sh.stats.WriteUpgrades++
	sh.mu.Unlock()

	tx := &bus.Transaction{
		MasterID: c.id,
		Signals:  action.Assert &^ core.SigBC,
		Addr:     addr,
		Op:       action.Op,
	}
	if action.Assert.Has(core.SigBC) {
		tx.Signals |= core.SigBC
	}
	if action.Op == core.BusWrite {
		// Update protocols broadcast the written word; holders connect
		// (SL) and merge it, memory is updated as a Futurebus side
		// effect (§4.2).
		tx.Partial = &bus.PartialWrite{Word: wordIdx, Val: val}
	}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return err
	}

	sh.mu.Lock()
	l = c.lookup(addr)
	if l == nil {
		sh.mu.Unlock()
		return fmt.Errorf("cache %d: line %#x vanished during its own upgrade", c.id, uint64(addr))
	}
	c.setStateTx(sh, l, action.Next.Resolve(res.CH), "write-upgrade", res.TxID)
	putWord(l.data, wordIdx, val)
	c.touch(sh, l)
	c.noteStall(sh, addr, res.StallCost())
	c.noteWrite(addr, wordIdx, val)
	sh.mu.Unlock()
	return nil
}

// writeMiss handles a write to a line the cache does not hold. Called
// with the bus held and the shard unlocked.
func (c *Cache) writeMiss(addr bus.Addr, wordIdx int, val uint32) error {
	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.WriteMisses++
	sh.mu.Unlock()
	action, ok := c.policyFor(addr).ChooseLocal(core.Invalid, core.LocalWrite)
	if !ok {
		return fmt.Errorf("cache %d (%s): no write-miss action", c.id, c.policyFor(addr).Name())
	}
	switch action.Op {
	case core.BusRead:
		// Read-for-modify: fetch the line and invalidate every other
		// copy in one transaction (CA, IM, R — column 6).
		if _, _, err := c.fillLineWith(addr, action); err != nil {
			return err
		}
		sh.mu.Lock()
		l := c.lookup(addr)
		if l == nil {
			sh.mu.Unlock()
			return fmt.Errorf("cache %d: RFO fill of %#x vanished", c.id, uint64(addr))
		}
		putWord(l.data, wordIdx, val)
		c.touch(sh, l)
		c.noteWrite(addr, wordIdx, val)
		sh.mu.Unlock()
		return nil
	case core.BusReadThenWrite:
		// Two transactions (Table 1 "Read>Write"): a normal read miss,
		// then the write-hit path on the resulting state.
		if _, _, err := c.fillLine(addr, core.LocalRead); err != nil {
			return err
		}
		sh.mu.Lock()
		if l := c.lookup(addr); l == nil {
			sh.mu.Unlock()
			return fmt.Errorf("cache %d: Read>Write fill of %#x vanished", c.id, uint64(addr))
		}
		action2, ok := c.policyFor(addr).ChooseLocal(c.mustState(addr), core.LocalWrite)
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("cache %d (%s): no write action after Read>Write", c.id, c.policyFor(addr).Name())
		}
		if !action2.NeedsBus() {
			l := c.lookup(addr)
			c.setState(sh, l, action2.Next.Resolve(false), "write-hit")
			putWord(l.data, wordIdx, val)
			c.touch(sh, l)
			c.noteWrite(addr, wordIdx, val)
			sh.mu.Unlock()
			return nil
		}
		return c.writeHitBus(addr, wordIdx, val) // unlocks the shard
	case core.BusWrite:
		// Write past the cache (a write-through or non-allocating
		// write): a partial word write, no local copy afterwards.
		tx := &bus.Transaction{
			MasterID: c.id,
			Signals:  action.Assert,
			Addr:     addr,
			Op:       core.BusWrite,
			Partial:  &bus.PartialWrite{Word: wordIdx, Val: val},
		}
		res, err := c.bus.ExecuteHeld(tx)
		if err != nil {
			return err
		}
		sh.mu.Lock()
		c.noteStall(sh, addr, res.StallCost())
		c.noteWrite(addr, wordIdx, val)
		sh.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("cache %d (%s): unsupported write-miss op %v", c.id, c.policyFor(addr).Name(), action.Op)
	}
}

// mustState returns the state of addr; callers hold addr's shard lock.
func (c *Cache) mustState(addr bus.Addr) core.State {
	if l := c.lookup(addr); l != nil {
		return l.state
	}
	return core.Invalid
}

// fillLine performs a read-miss fill using the policy's read-miss
// action. Called with the bus held and the shard unlocked. Returns a
// copy of the line data.
func (c *Cache) fillLine(addr bus.Addr, event core.LocalEvent) ([]byte, int64, error) {
	action, ok := c.policyFor(addr).ChooseLocal(core.Invalid, event)
	if !ok {
		return nil, 0, fmt.Errorf("cache %d (%s): no miss action for %s", c.id, c.policyFor(addr).Name(), event)
	}
	return c.fillLineWith(addr, action)
}

// fillLineWith fetches addr with the given miss action and installs the
// line. Called with the bus held and the shard unlocked.
func (c *Cache) fillLineWith(addr bus.Addr, action core.LocalAction) ([]byte, int64, error) {
	if action.Op != core.BusRead {
		return nil, 0, fmt.Errorf("cache %d (%s): miss action %s is not a read", c.id, c.policyFor(addr).Name(), action)
	}
	retains := action.Next.OnCH.Valid() || action.Next.NoCH.Valid()
	if retains {
		// Only reads that install a line need a victim; an uncacheable
		// read ("I,R") must not disturb the resident set.
		if err := c.makeRoom(addr); err != nil {
			return nil, 0, err
		}
	}
	tx := &bus.Transaction{
		MasterID: c.id,
		Signals:  action.Assert,
		Addr:     addr,
		Op:       core.BusRead,
	}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return nil, 0, err
	}
	next := action.Next.Resolve(res.CH)

	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.noteStall(sh, addr, res.StallCost())
	if !next.Valid() {
		// A non-caching read: nothing retained.
		return res.Data, res.StallCost(), nil
	}
	v := c.victim(addr)
	if v.state.Valid() {
		// makeRoom freed a way; a valid victim here means the set
		// filled up again, which is impossible while we hold the bus
		// shard every transaction on this set serialises through.
		return nil, 0, fmt.Errorf("cache %d: no free way for %#x after eviction", c.id, uint64(addr))
	}
	v.addr = addr
	c.setStateTx(sh, v, next, "fill", res.TxID)
	v.data = append(v.data[:0], res.Data...)
	c.touch(sh, v)
	return append([]byte(nil), res.Data...), res.StallCost(), nil
}

// makeRoom evicts a victim from addr's set if no way is free, pushing
// dirty (owned) victims to memory with the policy's Flush action.
// Called with the bus held and the shard unlocked. The victim shares
// addr's set and therefore its home shard, so the push runs on the bus
// tenure already held.
func (c *Cache) makeRoom(addr bus.Addr) error {
	sh := c.shard(addr)
	sh.mu.Lock()
	v := c.victim(addr)
	if !v.state.Valid() {
		sh.mu.Unlock()
		return nil
	}
	sh.stats.Replacements++
	victimAddr := v.addr
	victimState := v.state
	if c.cfg.OnEvict != nil {
		// Inclusion hook: let a bridge clear its cluster's copies
		// before the line leaves this directory (bus held).
		sh.mu.Unlock()
		if err := c.cfg.OnEvict(victimAddr); err != nil {
			return err
		}
		sh.mu.Lock()
		v = c.victim(addr)
		if !v.state.Valid() {
			sh.mu.Unlock()
			return nil
		}
		victimAddr = v.addr
		victimState = v.state
	}
	action, ok := c.policyFor(victimAddr).ChooseLocal(victimState, core.Flush)
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("cache %d (%s): no flush action for state %s", c.id, c.policyFor(victimAddr).Name(), victimState)
	}
	if !action.NeedsBus() {
		// Clean victims (E, S) are dropped silently.
		c.setState(sh, v, core.Invalid, "evict-clean")
		sh.mu.Unlock()
		return nil
	}
	data := append([]byte(nil), v.data...)
	sh.mu.Unlock()

	// Push the dirty line. The flusher retains nothing, so CA is not
	// asserted; sharers of an O line observe column 7 and keep their
	// copies while memory resumes ownership (Table 1, note 4).
	tx := &bus.Transaction{
		MasterID: c.id,
		Signals:  action.Assert,
		Addr:     victimAddr,
		Op:       core.BusWrite,
		Data:     data,
	}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	sh.stats.DirtyEvictions++
	sh.stats.Flushes++
	c.noteStall(sh, victimAddr, res.StallCost())
	if rec := c.obs; rec != nil {
		rec.Emit(obs.Event{TS: rec.Clock(), Kind: obs.KindEvict, Bus: c.bus.SegmentID(victimAddr), Proc: c.id, Addr: uint64(victimAddr), TxID: res.TxID})
	}
	if l := c.lookup(victimAddr); l != nil {
		c.setStateTx(sh, l, action.Next.Resolve(res.CH), "evict", res.TxID)
	}
	sh.mu.Unlock()
	return nil
}

// Flush pushes a line out of the cache (Table 1 note 4): dirty lines
// are written back, clean lines dropped. It is a no-op if the cache
// does not hold the line.
func (c *Cache) Flush(addr bus.Addr) error {
	return c.pushLine(addr, core.Flush)
}

// Pass pushes a dirty line back to memory but keeps a copy (Table 1
// note 3): ownership returns to memory, the cache retains the line in
// an unowned state. It is a no-op on unowned or absent lines.
func (c *Cache) Pass(addr bus.Addr) error {
	sh := c.shard(addr)
	sh.mu.Lock()
	l := c.lookup(addr)
	if l == nil || !l.state.OwnedCopy() {
		sh.mu.Unlock()
		return nil
	}
	sh.mu.Unlock()
	return c.pushLine(addr, core.Pass)
}

func (c *Cache) pushLine(addr bus.Addr, event core.LocalEvent) error {
	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)
	sh := c.shard(addr)
	sh.mu.Lock()
	l := c.lookup(addr)
	if l == nil {
		sh.mu.Unlock()
		return nil
	}
	action, ok := c.policyFor(addr).ChooseLocal(l.state, event)
	if !ok {
		if event == core.Pass {
			sh.mu.Unlock()
			return nil
		}
		st := l.state
		sh.mu.Unlock()
		return fmt.Errorf("cache %d (%s): no %s action for state %s", c.id, c.policyFor(addr).Name(), event, st)
	}
	if !action.NeedsBus() {
		c.setState(sh, l, action.Next.Resolve(false), "push")
		if event == core.Flush {
			sh.stats.Flushes++
		}
		sh.mu.Unlock()
		return nil
	}
	data := append([]byte(nil), l.data...)
	sh.mu.Unlock()

	tx := &bus.Transaction{
		MasterID: c.id,
		Signals:  action.Assert,
		Addr:     addr,
		Op:       core.BusWrite,
		Data:     data,
	}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	if l := c.lookup(addr); l != nil {
		c.setStateTx(sh, l, action.Next.Resolve(res.CH), "push", res.TxID)
	}
	switch event {
	case core.Pass:
		sh.stats.Passes++
	case core.Flush:
		sh.stats.Flushes++
	}
	c.noteStall(sh, addr, res.StallCost())
	sh.mu.Unlock()
	return nil
}

// FlushAll pushes every dirty line and drops every clean one — a
// context switch or checkpoint handing the cache's contents back to
// memory. Afterwards the cache is empty and memory holds the image of
// everything it owned.
func (c *Cache) FlushAll() error {
	c.lockAll()
	var addrs []bus.Addr
	for _, set := range c.sets {
		for i := range set {
			if set[i].state.Valid() {
				addrs = append(addrs, set[i].addr)
			}
		}
	}
	c.unlockAll()
	for _, addr := range addrs {
		if err := c.Flush(addr); err != nil {
			return err
		}
	}
	return nil
}

// noteWrite reports an applied write to the golden-image observer.
// Callers hold the shard lock or the bus (the point of visibility).
func (c *Cache) noteWrite(addr bus.Addr, wordIdx int, val uint32) {
	if c.cfg.OnWrite != nil {
		c.cfg.OnWrite(addr, wordIdx, val)
	}
}
