package cache

import (
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// TestUncachedReadWrite: an uncached master round-trips data through
// memory and never retains anything.
func TestUncachedReadWrite(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	u := NewUncached(0, b, false, nil)

	if err := u.WriteWord(5, 2, 0xF00); err != nil {
		t.Fatal(err)
	}
	v, err := u.ReadWord(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xF00 {
		t.Errorf("read back %#x", v)
	}
	st := u.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.StallNanos == 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestUncachedBounds: word indexes outside the line are rejected.
func TestUncachedBounds(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	u := NewUncached(0, b, false, nil)
	if _, err := u.ReadWord(1, testLineSize/4); err == nil {
		t.Error("read beyond line accepted")
	}
	if err := u.WriteWord(1, -1, 0); err == nil {
		t.Error("negative word accepted")
	}
}

// TestUncachedOnWriteHook: the golden-image hook fires under the bus.
func TestUncachedOnWriteHook(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	var calls int
	u := NewUncached(0, b, true, func(addr bus.Addr, w int, v uint32) { calls++ })
	if err := u.WriteWord(9, 0, 1); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("hook calls = %d", calls)
	}
}

// TestUncachedCoherentWithCache: reads see a dirty owner's data; writes
// are captured by it (the iodma example, asserted).
func TestUncachedCoherentWithCache(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), smallCfg())
	u := NewUncached(1, b, false, nil)

	mustWrite(t, c, 8, 0, 0xAB)
	if v, _ := u.ReadWord(8, 0); v != 0xAB {
		t.Errorf("uncached read got %#x, not the owner's data", v)
	}
	if err := u.WriteWord(8, 1, 0xCD); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, c, 8, 1); v != 0xCD {
		t.Errorf("owner missed captured write: %#x", v)
	}
}
