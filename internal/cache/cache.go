// Package cache implements a set-associative snooping cache for the
// simulated Futurebus. The cache is policy-driven: every local event
// (processor read/write, replacement pass/flush) and every snooped bus
// event is resolved by a core.Policy choosing an action from its
// protocol table, so the same engine runs MOESI, Berkeley, Dragon,
// Write-Once, Illinois, Firefly and write-through protocols.
//
// Concurrency contract: each cache serves exactly one processor. The
// directory is guarded per fabric shard: under the interleave layout
// constraint (Sets divisible by granularity × shards) every set is
// homed on exactly one shard, so shard s's snoop sweep and shard t's
// can pin their slices of the directory concurrently. The processor
// side locks one shard's mutex for local work and never holds it while
// waiting for the bus; the bus side (Query/Commit/Cancel) holds it for
// the duration of the address cycle, mirroring how a Futurebus address
// handshake pins every unit's directory (§2.1). On a single bus this
// degenerates to the one-mutex contract the package always had.
package cache

import (
	"encoding/binary"
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// Config parameterises a cache.
type Config struct {
	// Sets and Ways give the organisation; capacity is
	// Sets × Ways × line size.
	Sets, Ways int
	// OnWrite, when non-nil, observes every processor write the cache
	// applies, in the global per-line modification order (it is called
	// at the point the write becomes visible). The consistency checker
	// uses it to maintain the golden image.
	OnWrite func(addr bus.Addr, wordIdx int, val uint32)
	// OnSnoopChange, when non-nil, observes every state or data change
	// a snooped bus event caused (called with the bus held and the
	// directory locked). A multi-bus cluster bridge uses it to
	// propagate foreign invalidations and updates into its cluster
	// (internal/hierarchy).
	OnSnoopChange func(addr bus.Addr, from, to core.State, dataChanged bool)
	// OnEvict, when non-nil, runs before a valid line is evicted for
	// capacity, with the bus held and the directory unlocked. A bridge
	// uses it to maintain inclusion: no cluster cache may keep a line
	// its bridge no longer tracks.
	OnEvict func(addr bus.Addr) error
	// Regions optionally selects a different policy per address range —
	// §3.4's selective use of the class: "a given cache can make some
	// pages copy back, some write through, and some uncacheable (as
	// with the Fairchild CLIPPER)". Addresses outside every region use
	// the cache's main policy. Regions must not overlap.
	Regions []Region
}

// Region binds one line-address range [Start, End) to a policy.
type Region struct {
	Start, End bus.Addr
	// Policy governs accesses in the range. A NonCaching-variant
	// policy makes the range uncacheable: reads fetch without
	// retaining, writes go past the cache.
	Policy core.Policy
}

// policyFor returns the policy governing an address (§3.4 selective
// use). Safe without c.mu: regions are fixed at construction.
func (c *Cache) policyFor(addr bus.Addr) core.Policy {
	for i := range c.cfg.Regions {
		r := &c.cfg.Regions[i]
		if addr >= r.Start && addr < r.End {
			return r.Policy
		}
	}
	return c.policy
}

// DefaultConfig is a small cache that misses often enough to exercise
// the protocols.
func DefaultConfig() Config { return Config{Sets: 64, Ways: 2} }

type line struct {
	addr    bus.Addr
	state   core.State
	data    []byte
	lastUse uint64
}

// Cache is one snooping cache attached to a fabric (a single bus or an
// interleaved multi-bus backplane; the cache snoops every shard).
type Cache struct {
	id     int
	bus    bus.Fabric
	policy core.Policy
	cfg    Config
	// obs is inherited from the fabric at construction: one recorder
	// instruments the whole fabric. Nil obs = tracing off.
	obs *obs.Recorder
	// nshards/gran mirror the fabric's interleave parameters so the
	// hot path maps an address to its shard without an interface call.
	nshards, gran uint64

	// shards holds the per-fabric-shard mutable state; sets is indexed
	// by set number, and set s is guarded by shards[(s/gran)%nshards].
	shards []cacheShard
	sets   [][]line
}

// cacheShard is one fabric shard's slice of the cache: the directory
// lock for the sets homed there, plus the LRU clock and counters those
// sets use (sharding them keeps shard sweeps write-independent).
type cacheShard struct {
	mu    sync.Mutex
	clock uint64
	stats Stats
}

// Stats counts cache-side activity.
type Stats struct {
	// Processor-side.
	Reads, Writes           int64
	ReadHits, WriteHits     int64
	ReadMisses, WriteMisses int64
	WriteUpgrades           int64 // write hits that needed the bus (S/O)
	Passes, Flushes         int64
	Replacements            int64
	DirtyEvictions          int64
	// Bus-side (snooped).
	SnoopHits             int64
	InvalidationsReceived int64
	UpdatesReceived       int64
	InterventionsSupplied int64
	WritesCaptured        int64
	AbortsIssued          int64
	// StallNanos is simulated time this cache's processor spent on bus
	// transactions it issued.
	StallNanos int64
	// Transitions counts line state changes, indexed [from][to] in
	// core.State order. Identity transitions (a Table 1/2 action that
	// re-enters the current state) are not recorded; installs appear
	// as Invalid→X and invalidations as X→Invalid.
	Transitions [5][5]int64
}

// Add accumulates other into s, field by field — including the
// transition matrix — so aggregation code cannot silently drop a
// counter when one is added here.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ReadHits += other.ReadHits
	s.WriteHits += other.WriteHits
	s.ReadMisses += other.ReadMisses
	s.WriteMisses += other.WriteMisses
	s.WriteUpgrades += other.WriteUpgrades
	s.Passes += other.Passes
	s.Flushes += other.Flushes
	s.Replacements += other.Replacements
	s.DirtyEvictions += other.DirtyEvictions
	s.SnoopHits += other.SnoopHits
	s.InvalidationsReceived += other.InvalidationsReceived
	s.UpdatesReceived += other.UpdatesReceived
	s.InterventionsSupplied += other.InterventionsSupplied
	s.WritesCaptured += other.WritesCaptured
	s.AbortsIssued += other.AbortsIssued
	s.StallNanos += other.StallNanos
	for from := range s.Transitions {
		for to := range s.Transitions[from] {
			s.Transitions[from][to] += other.Transitions[from][to]
		}
	}
}

// home maps an address to the fabric shard that serialises it — and
// therefore to the cacheShard guarding its set.
func (c *Cache) home(addr bus.Addr) int {
	if c.nshards == 1 {
		return 0
	}
	return int((uint64(addr) / c.gran) % c.nshards)
}

// shard returns the cacheShard guarding addr's set.
func (c *Cache) shard(addr bus.Addr) *cacheShard { return &c.shards[c.home(addr)] }

// setState records a state change on a line, tagging the emitted
// event with why it happened. Callers hold sh.mu, where sh guards
// l.addr.
func (c *Cache) setState(sh *cacheShard, l *line, next core.State, cause string) {
	c.setStateTx(sh, l, next, cause, 0)
}

// setStateTx is setState with the causing bus transaction's id, so the
// coherence analyzer can group a write with the fan-out of state
// changes it triggered (txid 0 = no bus transaction: a silent local
// transition).
func (c *Cache) setStateTx(sh *cacheShard, l *line, next core.State, cause string, txid uint64) {
	if l.state == next {
		return
	}
	sh.stats.Transitions[l.state][next]++
	if rec := c.obs; rec != nil {
		rec.Emit(obs.Event{
			TS: rec.Clock(), Kind: obs.KindState, Bus: c.bus.SegmentID(l.addr), Proc: c.id,
			Addr: uint64(l.addr), From: l.state.Letter(), To: next.Letter(), Cause: cause,
			Proto: c.policyFor(l.addr).Name(), TxID: txid,
		})
	}
	l.state = next
}

// snoopCause names the Table 2 column a snooped transaction presented,
// for the Cause of the resulting state event — distinguishing an
// invalidation received from a read-for-ownership (CA+IM) from one
// received from a plain write (IM) or a broadcast write (IM+BC).
func snoopCause(tx *bus.Transaction) string {
	if tx.Cmd == bus.CmdClean {
		return "snoop-clean"
	}
	switch tx.Event() {
	case core.BusCacheRead:
		return "snoop-cache-read"
	case core.BusCacheRFO:
		return "snoop-cache-rfo"
	case core.BusPlainRead:
		return "snoop-read"
	case core.BusCacheBroadcastWrite:
		return "snoop-cache-bcast-write"
	case core.BusPlainWrite:
		return "snoop-write"
	case core.BusPlainBroadcastWrite:
		return "snoop-bcast-write"
	}
	return "snoop"
}

// noteStall accounts simulated bus time this cache's processor spent
// on a transaction it issued, and emits the stall span. Callers hold
// the shard lock guarding addr.
func (c *Cache) noteStall(sh *cacheShard, addr bus.Addr, cost int64) {
	sh.stats.StallNanos += cost
	if rec := c.obs; rec != nil {
		// Split-mode stalls include off-bus time, which can exceed the
		// occupancy clock's advance; clamp the span start at 0.
		ts := rec.Clock() - cost
		if ts < 0 {
			ts = 0
		}
		rec.Emit(obs.Event{
			TS: ts, Dur: cost, Kind: obs.KindStall,
			Bus: c.bus.SegmentID(addr), Proc: c.id, Addr: uint64(addr),
		})
	}
}

// lockAll takes every shard lock in shard order (whole-directory
// operations: Stats, StateCensus, ForEachLine). The matching
// unlockAll releases them.
func (c *Cache) lockAll() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
}

func (c *Cache) unlockAll() {
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// StateCensus returns the number of valid lines per state — the
// occupancy distribution the Archibald–Baer style reports use.
func (c *Cache) StateCensus() map[core.State]int {
	c.lockAll()
	defer c.unlockAll()
	census := make(map[core.State]int)
	for _, set := range c.sets {
		for i := range set {
			if set[i].state.Valid() {
				census[set[i].state]++
			}
		}
	}
	return census
}

// checkLayout validates a cache geometry against a fabric's interleave
// parameters: every bus-tenure sequence the cache issues (miss fill +
// victim flush, RMW, recovery push) must stay on one shard, which
// holds exactly when each set is homed on a single shard — Sets must
// be a multiple of granularity × shards. The sector cache indexes by
// tag, so it passes sets = Sets and granularity in tag units.
func checkLayout(kind string, sets int, f bus.Fabric, granularity int) {
	n := f.Shards()
	if n <= 1 {
		return
	}
	if granularity < 1 || sets%(granularity*n) != 0 {
		panic(fmt.Sprintf(
			"cache: %s with %d sets cannot interleave over %d shards at granularity %d (sets must be a multiple of granularity × shards so each set is homed on one shard)",
			kind, sets, n, granularity))
	}
}

// New creates a cache and attaches it to the fabric as a snooper (on
// every shard). The id must be unique among all bus masters.
func New(id int, b bus.Fabric, policy core.Policy, cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %d sets × %d ways", cfg.Sets, cfg.Ways))
	}
	checkLayout("cache", cfg.Sets, b, b.Granularity())
	c := &Cache{
		id: id, bus: b, policy: policy, cfg: cfg, obs: b.Recorder(),
		nshards: uint64(b.Shards()), gran: uint64(b.Granularity()),
	}
	c.shards = make([]cacheShard, c.nshards)
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	b.Attach(c)
	return c
}

// ID returns the cache's bus master id.
func (c *Cache) ID() int { return c.id }

// LineSize returns the system line size the cache operates on.
func (c *Cache) LineSize() int { return c.bus.LineSize() }

// Policy returns the protocol the cache runs.
func (c *Cache) Policy() core.Policy { return c.policy }

// Stats returns a snapshot of the counters, summed over shards.
func (c *Cache) Stats() Stats {
	c.lockAll()
	defer c.unlockAll()
	var total Stats
	for i := range c.shards {
		total.Add(c.shards[i].stats)
	}
	return total
}

// setFor maps a line address to its set index.
func (c *Cache) setFor(addr bus.Addr) int {
	return int(uint64(addr) % uint64(c.cfg.Sets))
}

// lookup returns the way holding addr, or nil. Callers hold the shard
// lock guarding addr.
func (c *Cache) lookup(addr bus.Addr) *line {
	set := c.sets[c.setFor(addr)]
	for i := range set {
		if set[i].state.Valid() && set[i].addr == addr {
			return &set[i]
		}
	}
	return nil
}

// touch updates the LRU clock for a line. Callers hold sh.mu, where sh
// guards l.addr (LRU only ever compares lines of one set, and a set is
// homed on one shard, so a per-shard clock orders everything it needs
// to).
func (c *Cache) touch(sh *cacheShard, l *line) {
	sh.clock++
	l.lastUse = sh.clock
}

// victim returns the way to fill for addr: an invalid way if one
// exists, else the least recently used. Callers hold addr's shard
// lock. The victim shares addr's set, hence its home shard — a miss
// fill and its eviction push stay on the bus tenure already held.
func (c *Cache) victim(addr bus.Addr) *line {
	set := c.sets[c.setFor(addr)]
	var lru *line
	for i := range set {
		if !set[i].state.Valid() {
			return &set[i]
		}
		if lru == nil || set[i].lastUse < lru.lastUse {
			lru = &set[i]
		}
	}
	return lru
}

// State returns the cache's state for a line (Invalid if absent).
func (c *Cache) State(addr bus.Addr) core.State {
	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l := c.lookup(addr); l != nil {
		return l.state
	}
	return core.Invalid
}

// Contains reports whether the cache holds the line in any valid state.
func (c *Cache) Contains(addr bus.Addr) bool { return c.State(addr).Valid() }

// ForEachLine visits every valid line with a copy of its data (used by
// the consistency checker). The cache is locked for the duration.
func (c *Cache) ForEachLine(fn func(addr bus.Addr, s core.State, data []byte)) {
	c.lockAll()
	defer c.unlockAll()
	for _, set := range c.sets {
		for i := range set {
			if set[i].state.Valid() {
				fn(set[i].addr, set[i].state, append([]byte(nil), set[i].data...))
			}
		}
	}
}

// recentlyUsed reports whether l is not the least recently used valid
// line of its set (the §5.2 notion of "quite recently used": the MRU
// element of a two-element set is recent, the LRU element is nearing
// replacement). Callers hold l.addr's shard lock.
func (c *Cache) recentlyUsed(l *line) bool {
	set := c.sets[c.setFor(l.addr)]
	for i := range set {
		if set[i].state.Valid() && set[i].lastUse < l.lastUse {
			return true
		}
	}
	return false
}

// WouldUseBus predicts whether an access would issue a bus transaction
// (a miss, or a write hit that must announce itself). The deterministic
// simulation engine uses it to order processors in time before
// executing their references; for dynamically-choosing policies the
// prediction is a heuristic (the policy may pick differently when the
// access runs).
func (c *Cache) WouldUseBus(addr bus.Addr, write bool) bool {
	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	event := core.LocalRead
	if write {
		event = core.LocalWrite
	}
	state := core.Invalid
	if l := c.lookup(addr); l != nil {
		state = l.state
	} else if !write {
		// A miss also needs the bus to evict a dirty victim; either
		// way it is a bus access.
		return true
	}
	action, ok := c.policyFor(addr).ChooseLocal(state, event)
	return !ok || action.NeedsBus()
}

// word reads a 32-bit little-endian word from a line buffer.
func word(data []byte, idx int) uint32 {
	return binary.LittleEndian.Uint32(data[idx*4:])
}

// putWord writes a 32-bit little-endian word into a line buffer.
func putWord(data []byte, idx int, v uint32) {
	binary.LittleEndian.PutUint32(data[idx*4:], v)
}

func (c *Cache) checkWord(wordIdx int) error {
	if wordIdx < 0 || (wordIdx+1)*4 > c.bus.LineSize() {
		return fmt.Errorf("cache %d: word %d outside %d-byte line", c.id, wordIdx, c.bus.LineSize())
	}
	return nil
}
