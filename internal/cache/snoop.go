package cache

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// This file is the bus side of the cache: participation in every
// broadcast address cycle (§2.1 — "the cache must check the address for
// a hit in its directory before allowing the address cycle to
// complete"). Query locks the shard guarding the snooped line and
// leaves it locked; Commit or Cancel unlocks it, mirroring the
// directory hold of a real address handshake (see the bus.Snooper
// contract). Sweeps on different fabric shards lock different
// cacheShards, so they proceed concurrently without ever contending.

var _ bus.Aborter = (*Cache)(nil)

// SnooperID implements bus.Snooper.
func (c *Cache) SnooperID() int { return c.id }

// Query implements bus.Snooper: consult the directory and the policy
// for the snooped transaction, leaving the line's shard lock held until
// Commit/Cancel.
func (c *Cache) Query(tx *bus.Transaction) bus.SnoopResponse {
	c.shard(tx.Addr).mu.Lock() // released by Commit or Cancel
	l := c.lookup(tx.Addr)
	if l == nil {
		// Not in the directory: Invalid row of Table 2, all columns I.
		return bus.SnoopResponse{}
	}
	if tx.Cmd == bus.CmdClean {
		return c.queryClean(l)
	}
	event := tx.Event()
	var action core.SnoopAction
	var ok bool
	policy := c.policyFor(tx.Addr)
	if ra, isRA := policy.(core.RecencyAware); isRA {
		// §5.2 refinement: tell the policy whether this line is
		// recently used within its set, so it can choose between
		// updating and discarding on a broadcast write.
		action, ok = ra.ChooseSnoopRecency(l.state, event, c.recentlyUsed(l))
	} else {
		action, ok = policy.ChooseSnoop(l.state, event)
	}
	if !ok {
		// A "—" cell: the paper marks these "not a legal case. error
		// condition" — reaching one means a protocol (or protocol mix)
		// violated the class, so fail loudly.
		panic(fmt.Sprintf("cache %d (%s): illegal bus event col %d (%s) in state %s for %s",
			c.id, policy.Name(), event.Column(), event, l.state, tx))
	}
	resp := bus.SnoopResponse{Action: action, State: l.state, Hit: true}
	if action.AssertDI {
		resp.Line = append([]byte(nil), l.data...)
	}
	return resp
}

// queryClean answers a CmdClean command cycle (§6 extension): an owner
// aborts, pushes the line, and keeps an unowned shareable copy; any
// other holder simply keeps its copy (it already matches the owner, and
// will match memory once the owner has pushed). Callers hold the
// line's shard lock.
func (c *Cache) queryClean(l *line) bus.SnoopResponse {
	if l.state.OwnedCopy() {
		return bus.SnoopResponse{
			Action: core.SnoopAction{
				Abort: &core.Recovery{Next: core.Shared, Assert: core.SigCA},
			},
			State: l.state,
			Hit:   true,
		}
	}
	return bus.SnoopResponse{
		Action: core.SnoopAction{Next: core.Uncond(l.state), AssertCH: true},
		State:  l.state,
		Hit:    true,
	}
}

// Commit implements bus.Snooper: apply the action chosen in Query and
// release the directory.
func (c *Cache) Commit(tx *bus.Transaction, resp bus.SnoopResponse, otherCH bool) {
	sh := c.shard(tx.Addr)
	defer sh.mu.Unlock()
	if !resp.Hit {
		return
	}
	l := c.lookup(tx.Addr)
	if l == nil {
		panic(fmt.Sprintf("cache %d: line %#x vanished during snoop", c.id, uint64(tx.Addr)))
	}
	action := resp.Action
	sh.stats.SnoopHits++
	from := l.state
	dataChanged := false

	// Data movement first: capture (DI on a write) or update (SL).
	if tx.Op == core.BusWrite && (action.AssertDI || action.AssertSL) {
		dataChanged = true
		if tx.Partial != nil {
			putWord(l.data, tx.Partial.Word, tx.Partial.Val)
		} else {
			copy(l.data, tx.Data)
		}
		if action.AssertDI {
			sh.stats.WritesCaptured++
			c.emitSnoop(obs.KindCapture, tx)
		} else {
			sh.stats.UpdatesReceived++
			c.emitSnoop(obs.KindUpdate, tx)
		}
	}
	if tx.Op == core.BusRead && action.AssertDI {
		sh.stats.InterventionsSupplied++
		c.emitSnoop(obs.KindIntervene, tx)
	}

	next := action.Next.Resolve(otherCH)
	if !next.Valid() {
		next = core.Invalid
		sh.stats.InvalidationsReceived++
	}
	c.setStateTx(sh, l, next, snoopCause(tx), tx.TxID())
	if c.cfg.OnSnoopChange != nil && (from != next || dataChanged) {
		c.cfg.OnSnoopChange(tx.Addr, from, next, dataChanged)
	}
}

// Cancel implements bus.Snooper: the transaction was aborted by BS;
// release the directory without applying anything.
func (c *Cache) Cancel(tx *bus.Transaction, resp bus.SnoopResponse) {
	c.shard(tx.Addr).mu.Unlock()
}

// Recover implements bus.Aborter: after this cache asserted BS, push
// the owned line to memory and enter the recovery state, so that the
// aborted master's retry finds memory up to date (§4.3–4.5). The bus
// shard is held by the aborted transaction; the line's shard lock is
// held across the push — the nested push cannot snoop this slice of
// the cache (it masters it, and the push targets the same shard) and
// cannot itself be aborted (no other owner of the line can exist).
func (c *Cache) Recover(b *bus.Bus, aborted *bus.Transaction, resp bus.SnoopResponse) error {
	rec := resp.Action.Abort
	if rec == nil {
		return fmt.Errorf("cache %d: Recover called without an abort action", c.id)
	}
	sh := c.shard(aborted.Addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l := c.lookup(aborted.Addr)
	if l == nil || !l.state.OwnedCopy() {
		return fmt.Errorf("cache %d: BS recovery for %#x but line is not owned", c.id, uint64(aborted.Addr))
	}
	sh.stats.AbortsIssued++
	tx := &bus.Transaction{
		MasterID: c.id,
		Signals:  rec.Assert,
		Addr:     aborted.Addr,
		Op:       core.BusWrite,
		Data:     append([]byte(nil), l.data...),
	}
	res, err := b.ExecuteHeld(tx)
	if err != nil {
		return err
	}
	c.noteStall(sh, aborted.Addr, res.StallCost())
	c.setStateTx(sh, l, rec.Next, "bs-recovery", res.TxID)
	return nil
}

// emitSnoop emits an instant event for a data movement this cache
// performed as a snooper (intervention supplied, update received, write
// captured). Callers hold the line's shard lock.
func (c *Cache) emitSnoop(kind obs.Kind, tx *bus.Transaction) {
	if rec := c.obs; rec != nil {
		rec.Emit(obs.Event{TS: rec.Clock(), Kind: kind, Bus: c.bus.SegmentID(tx.Addr), Proc: c.id, Addr: uint64(tx.Addr), TxID: tx.TxID()})
	}
}
