package cache

import (
	"strings"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// TestSnoopColumn7: a non-caching read of a dirty line — the owner
// intervenes and STAYS Modified (M,CH?,DI), unlike column 5 where it
// demotes to O.
func TestSnoopColumn7(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), smallCfg())
	dma := NewUncached(1, b, false, nil)

	mustWrite(t, c, 3, 0, 0x99)
	v, err := dma.ReadWord(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x99 {
		t.Errorf("DMA read %#x", v)
	}
	if c.State(3) != core.Modified {
		t.Errorf("owner state after col 7: %s", c.State(3))
	}
}

// TestSnoopColumn7OwnedListens: an O owner on column 7 resolves CH:O/M
// by listening — with a sharer (CH) it stays O, alone it upgrades to M.
func TestSnoopColumn7OwnedListens(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c0 := New(0, b, protocols.MOESI(), smallCfg())
	c1 := New(1, b, protocols.MOESI(), smallCfg())
	dma := NewUncached(2, b, false, nil)

	// Case 1: owner + sharer → owner stays O.
	mustWrite(t, c0, 3, 0, 1)
	mustRead(t, c1, 3, 0) // c0: M→O, c1: S
	if _, err := dma.ReadWord(3, 0); err != nil {
		t.Fatal(err)
	}
	if c0.State(3) != core.Owned {
		t.Errorf("owner with sharer went %s on col 7", c0.State(3))
	}

	// Case 2: lone owner (sharer flushed) → upgrades to M.
	if err := c1.Flush(3); err != nil {
		t.Fatal(err)
	}
	if _, err := dma.ReadWord(3, 0); err != nil {
		t.Fatal(err)
	}
	if c0.State(3) != core.Modified {
		t.Errorf("lone O owner went %s on col 7, want M (CH:O/M, no CH)", c0.State(3))
	}
}

// TestSnoopColumn10: a broadcast write by a non-cache — the owner MUST
// connect and update (M,CH?,SL), staying owner.
func TestSnoopColumn10(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), smallCfg())
	dma := NewUncached(1, b, true, nil) // broadcast writes

	mustWrite(t, c, 3, 0, 0x11)
	if err := dma.WriteWord(3, 1, 0x22); err != nil {
		t.Fatal(err)
	}
	if c.State(3) != core.Modified {
		t.Errorf("owner state after col 10: %s", c.State(3))
	}
	if v := mustRead(t, c, 3, 1); v != 0x22 {
		t.Errorf("owner missed broadcast update: %#x", v)
	}
	// Broadcast also updated memory.
	if mem.Peek(3)[4] != 0x22 {
		t.Error("memory missed the broadcast")
	}
	if st := c.Stats(); st.UpdatesReceived != 1 {
		t.Errorf("updates received = %d", st.UpdatesReceived)
	}
}

// TestSnoopColumn9InvalidatesSharers: a plain write kills unowning
// copies — they cannot capture it.
func TestSnoopColumn9InvalidatesSharers(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c0 := New(0, b, protocols.MOESI(), smallCfg())
	c1 := New(1, b, protocols.MOESI(), smallCfg())
	dma := NewUncached(2, b, false, nil)

	mustRead(t, c0, 4, 0)
	mustRead(t, c1, 4, 0) // both S
	if err := dma.WriteWord(4, 0, 0x77); err != nil {
		t.Fatal(err)
	}
	if c0.Contains(4) || c1.Contains(4) {
		t.Error("S copies survived a column 9 write")
	}
	if mem.Peek(4)[0] != 0x77 {
		t.Error("memory missed the uncached write")
	}
}

// TestSnoopIllegalColumnPanics: a "—" cell is an error condition; the
// snooper fails loudly instead of guessing.
func TestSnoopIllegalColumnPanics(t *testing.T) {
	// Build a deliberately-broken policy: M on column 8 is illegal, so
	// force it by having a cache in M while another broadcasts. A
	// correct class mix can't produce it, so we drive the bus by hand.
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), smallCfg())
	mustWrite(t, c, 6, 0, 1) // c holds M

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("illegal column did not panic")
		}
		if !strings.Contains(r.(string), "col 8") {
			t.Errorf("panic message: %v", r)
		}
	}()
	// A forged column-8 broadcast write against an M holder.
	_, _ = b.Execute(&bus.Transaction{
		MasterID: 99,
		Signals:  core.SigCA | core.SigIM | core.SigBC,
		Op:       core.BusWrite,
		Addr:     6,
		Partial:  &bus.PartialWrite{Word: 0, Val: 2},
	})
}

// TestAdaptiveRecency: the §5.2 adaptive policy updates the MRU line
// and discards the LRU line on a snooped broadcast write.
func TestAdaptiveRecency(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	adaptive := New(0, b, protocols.NewAdaptive(), smallCfg())
	writer := New(1, b, protocols.MOESI(), smallCfg())

	// Two lines in the same set of the adaptive cache; line 0 is LRU.
	mustRead(t, adaptive, 0, 0)
	mustRead(t, adaptive, 4, 0)
	mustRead(t, writer, 0, 0)
	mustRead(t, writer, 4, 0)

	// Writer broadcasts to the MRU line (4): adaptive keeps it updated.
	mustWrite(t, writer, 4, 0, 0xAA)
	if adaptive.State(4) != core.Shared {
		t.Errorf("MRU line went %s, want updated S", adaptive.State(4))
	}
	// Reading line 4 just made it MRU again; line 0 is LRU. Writer
	// broadcasts to line 0: adaptive discards it.
	mustWrite(t, writer, 0, 0, 0xBB)
	if adaptive.Contains(0) {
		t.Error("LRU line survived; adaptive should discard it")
	}
	st := adaptive.Stats()
	if st.UpdatesReceived != 1 || st.InvalidationsReceived != 1 {
		t.Errorf("adaptive stats: upd=%d inv=%d", st.UpdatesReceived, st.InvalidationsReceived)
	}
}

// TestSnoopHitCounter counts only true directory hits.
func TestSnoopHitCounter(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c0 := New(0, b, protocols.MOESI(), smallCfg())
	c1 := New(1, b, protocols.MOESI(), smallCfg())
	mustRead(t, c0, 1, 0) // c1 misses: no snoop hit
	mustRead(t, c1, 1, 0) // c0 hits: one snoop hit
	mustRead(t, c1, 2, 0) // c0 misses: no snoop hit
	if st := c0.Stats(); st.SnoopHits != 1 {
		t.Errorf("c0 snoop hits = %d", st.SnoopHits)
	}
	if st := c1.Stats(); st.SnoopHits != 0 {
		t.Errorf("c1 snoop hits = %d", st.SnoopHits)
	}
}
