package cache

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// The bus side of the sector cache. Consistency state lives on the
// transfer sub-sector (§5.1), so snooping is line-granular and the
// policy tables apply unchanged; only the directory lookup differs.
// Locking follows the plain cache: Query takes the shard lock guarding
// the transaction's address, Commit/Cancel release it.

var _ bus.Aborter = (*SectorCache)(nil)

// SnooperID implements bus.Snooper.
func (c *SectorCache) SnooperID() int { return c.id }

// Query implements bus.Snooper (leaves the addressed shard's lock held;
// see bus.Snooper).
func (c *SectorCache) Query(tx *bus.Transaction) bus.SnoopResponse {
	c.shard(tx.Addr).mu.Lock() // released by Commit or Cancel
	e, si := c.lookup(tx.Addr)
	if e == nil || !e.subs[si].state.Valid() {
		return bus.SnoopResponse{}
	}
	if tx.Cmd == bus.CmdClean {
		if e.subs[si].state.OwnedCopy() {
			return bus.SnoopResponse{
				Action: core.SnoopAction{Abort: &core.Recovery{Next: core.Shared, Assert: core.SigCA}},
				State:  e.subs[si].state,
				Hit:    true,
			}
		}
		return bus.SnoopResponse{
			Action: core.SnoopAction{Next: core.Uncond(e.subs[si].state), AssertCH: true},
			State:  e.subs[si].state,
			Hit:    true,
		}
	}
	action, ok := c.policy.ChooseSnoop(e.subs[si].state, tx.Event())
	if !ok {
		panic(fmt.Sprintf("sector cache %d (%s): illegal bus event col %d in state %s for %s",
			c.id, c.policy.Name(), tx.Event().Column(), e.subs[si].state, tx))
	}
	resp := bus.SnoopResponse{Action: action, State: e.subs[si].state, Hit: true}
	if action.AssertDI {
		resp.Line = append([]byte(nil), e.subs[si].data...)
	}
	return resp
}

// Commit implements bus.Snooper.
func (c *SectorCache) Commit(tx *bus.Transaction, resp bus.SnoopResponse, otherCH bool) {
	sh := c.shard(tx.Addr)
	defer sh.mu.Unlock()
	if !resp.Hit {
		return
	}
	e, si := c.lookup(tx.Addr)
	if e == nil {
		panic(fmt.Sprintf("sector cache %d: sector of %#x vanished during snoop", c.id, uint64(tx.Addr)))
	}
	s := &e.subs[si]
	action := resp.Action
	sh.stats.SnoopHits++

	if tx.Op == core.BusWrite && (action.AssertDI || action.AssertSL) {
		if tx.Partial != nil {
			putWord(s.data, tx.Partial.Word, tx.Partial.Val)
		} else {
			copy(s.data, tx.Data)
		}
		if action.AssertDI {
			c.emitSnoop(obs.KindCapture, tx)
		} else {
			sh.stats.UpdatesReceived++
			c.emitSnoop(obs.KindUpdate, tx)
		}
	}
	if tx.Op == core.BusRead && action.AssertDI {
		sh.stats.InterventionsSupplied++
		c.emitSnoop(obs.KindIntervene, tx)
	}

	next := action.Next.Resolve(otherCH)
	if !next.Valid() {
		next = core.Invalid
		sh.stats.InvalidationsReceived++
	}
	c.setSubState(sh, tx.Addr, s, next, snoopCause(tx), tx.TxID())
}

// Cancel implements bus.Snooper.
func (c *SectorCache) Cancel(tx *bus.Transaction, resp bus.SnoopResponse) {
	c.shard(tx.Addr).mu.Unlock()
}

// Recover implements bus.Aborter (BS push of one sub-sector). The push
// targets the aborted transaction's address, so it stays on the shard
// whose sweep invoked us — holding that shard's lock across the nested
// ExecuteHeld cannot deadlock (see Cache.Recover).
func (c *SectorCache) Recover(b *bus.Bus, aborted *bus.Transaction, resp bus.SnoopResponse) error {
	rec := resp.Action.Abort
	if rec == nil {
		return fmt.Errorf("sector cache %d: Recover without an abort action", c.id)
	}
	sh := c.shard(aborted.Addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, si := c.lookup(aborted.Addr)
	if e == nil || !e.subs[si].state.OwnedCopy() {
		return fmt.Errorf("sector cache %d: BS recovery for %#x but sub-sector is not owned", c.id, uint64(aborted.Addr))
	}
	res, err := b.ExecuteHeld(&bus.Transaction{
		MasterID: c.id,
		Signals:  rec.Assert,
		Addr:     aborted.Addr,
		Op:       core.BusWrite,
		Data:     append([]byte(nil), e.subs[si].data...),
	})
	if err != nil {
		return err
	}
	c.noteStall(sh, aborted.Addr, res.StallCost())
	next := rec.Next
	if !next.Valid() {
		next = core.Invalid
	}
	c.setSubState(sh, aborted.Addr, &e.subs[si], next, "bs-recovery", res.TxID)
	return nil
}

// emitSnoop mirrors Cache.emitSnoop for the sector cache's data
// movements as a snooper. Callers hold the addressed shard's lock.
func (c *SectorCache) emitSnoop(kind obs.Kind, tx *bus.Transaction) {
	if rec := c.obs; rec != nil {
		rec.Emit(obs.Event{TS: rec.Clock(), Kind: kind, Bus: c.bus.SegmentID(tx.Addr), Proc: c.id, Addr: uint64(tx.Addr), TxID: tx.TxID()})
	}
}
