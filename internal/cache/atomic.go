package cache

import (
	"fmt"

	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// Atomic read-modify-write operations. The arbiter of a line's home
// fabric shard is the serialisation point for that line, so an RMW is
// implemented by holding that shard's mastership across the read and
// the write: no other master can slip a transaction on the line (and
// thus a conflicting write) in between.
// This is the classic bus-locked RMW of the era's multiprocessors and
// is what makes spinlocks and shared counters implementable on the
// coherent memory image (see examples/spinlock).

// Update atomically applies f to one word: it reads the current value,
// computes f(old), writes it, and returns (old, new). The whole
// operation is one critical section on the bus. In the cache's
// statistics it counts as one read and one write.
func (c *Cache) Update(addr bus.Addr, wordIdx int, f func(uint32) uint32) (old, updated uint32, err error) {
	if err := c.checkWord(wordIdx); err != nil {
		return 0, 0, err
	}
	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)

	// Read phase: local copy if present, otherwise a normal read-miss
	// fill (still under the held bus).
	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.Reads++
	if l := c.lookup(addr); l != nil {
		old = word(l.data, wordIdx)
		c.touch(sh, l)
		sh.stats.ReadHits++
		sh.mu.Unlock()
	} else {
		sh.stats.ReadMisses++
		sh.mu.Unlock()
		data, _, ferr := c.fillLine(addr, core.LocalRead)
		if ferr != nil {
			return 0, 0, ferr
		}
		old = word(data, wordIdx)
	}

	updated = f(old)
	sh.mu.Lock()
	sh.stats.Writes++
	sh.mu.Unlock()
	if err := c.writeHeld(addr, wordIdx, updated); err != nil {
		return 0, 0, err
	}
	return old, updated, nil
}

// CompareAndSwap atomically replaces the word with new if it equals
// old, reporting whether the swap happened.
func (c *Cache) CompareAndSwap(addr bus.Addr, wordIdx int, old, new uint32) (bool, error) {
	swapped := false
	_, _, err := c.Update(addr, wordIdx, func(cur uint32) uint32 {
		if cur == old {
			swapped = true
			return new
		}
		return cur
	})
	return swapped, err
}

// FetchAdd atomically adds delta to the word and returns the previous
// value.
func (c *Cache) FetchAdd(addr bus.Addr, wordIdx int, delta uint32) (uint32, error) {
	old, _, err := c.Update(addr, wordIdx, func(cur uint32) uint32 { return cur + delta })
	return old, err
}

// FetchAdd is the uncached master's atomic add (see Update).
func (u *Uncached) FetchAdd(addr bus.Addr, wordIdx int, delta uint32) (uint32, error) {
	old, _, err := u.Update(addr, wordIdx, func(cur uint32) uint32 { return cur + delta })
	return old, err
}

// CompareAndSwap is the uncached master's atomic swap (see Update).
func (u *Uncached) CompareAndSwap(addr bus.Addr, wordIdx int, old, new uint32) (bool, error) {
	swapped := false
	_, _, err := u.Update(addr, wordIdx, func(cur uint32) uint32 {
		if cur == old {
			swapped = true
			return new
		}
		return cur
	})
	return swapped, err
}

// Update is the uncached master's bus-locked RMW: read (column 7) and
// write (column 9/10) under one bus tenure. An owning cache supplies
// the read and captures the write, so the operation is atomic and
// coherent even against dirty cached copies.
func (u *Uncached) Update(addr bus.Addr, wordIdx int, f func(uint32) uint32) (old, updated uint32, err error) {
	if wordIdx < 0 || (wordIdx+1)*4 > u.bus.LineSize() {
		return 0, 0, fmt.Errorf("uncached %d: word %d outside line", u.id, wordIdx)
	}
	u.bus.Acquire(addr, u.id)
	defer u.bus.Release(addr)

	read := &bus.Transaction{MasterID: u.id, Op: core.BusRead, Addr: addr}
	res, err := u.bus.ExecuteHeld(read)
	if err != nil {
		return 0, 0, err
	}
	old = word(res.Data, wordIdx)
	updated = f(old)

	sig := core.SigIM
	if u.broadcast {
		sig |= core.SigBC
	}
	write := &bus.Transaction{
		MasterID: u.id, Signals: sig, Op: core.BusWrite, Addr: addr,
		Partial: &bus.PartialWrite{Word: wordIdx, Val: updated},
	}
	wres, err := u.bus.ExecuteHeld(write)
	if err != nil {
		return 0, 0, err
	}
	if u.onWrite != nil {
		u.onWrite(addr, wordIdx, updated)
	}
	u.mu.Lock()
	u.stats.Reads++
	u.stats.Writes++
	u.stats.StallNanos += res.StallCost() + wres.StallCost()
	u.mu.Unlock()
	return old, updated, nil
}
