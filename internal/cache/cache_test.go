package cache

import (
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

const testLineSize = 32

// rig builds a bus + memory + n caches, all running the given protocol
// factory.
func rig(t *testing.T, n int, factory func() core.Policy, cfg Config) (*bus.Bus, *memory.Memory, []*Cache) {
	t.Helper()
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	caches := make([]*Cache, n)
	for i := range caches {
		caches[i] = New(i, b, factory(), cfg)
	}
	return b, mem, caches
}

func smallCfg() Config { return Config{Sets: 4, Ways: 2} }

func mustRead(t *testing.T, c *Cache, addr bus.Addr, word int) uint32 {
	t.Helper()
	v, err := c.ReadWord(addr, word)
	if err != nil {
		t.Fatalf("cache %d read %#x: %v", c.ID(), uint64(addr), err)
	}
	return v
}

func mustWrite(t *testing.T, c *Cache, addr bus.Addr, word int, val uint32) {
	t.Helper()
	if err := c.WriteWord(addr, word, val); err != nil {
		t.Fatalf("cache %d write %#x: %v", c.ID(), uint64(addr), err)
	}
}

// TestGeometryPanics: zero sets or ways is a construction error.
func TestGeometryPanics(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	New(0, b, protocols.MOESI(), Config{Sets: 0, Ways: 2})
}

// TestLRUReplacement: filling a 2-way set three times evicts the least
// recently used line.
func TestLRUReplacement(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	// Three addresses mapping to set 0 (sets=4).
	a, b2, c3 := bus.Addr(0), bus.Addr(4), bus.Addr(8)
	mustRead(t, c, a, 0)
	mustRead(t, c, b2, 0)
	mustRead(t, c, a, 0) // a is now MRU
	mustRead(t, c, c3, 0)
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b2) {
		t.Error("LRU line survived")
	}
	if !c.Contains(c3) {
		t.Error("new line not installed")
	}
	if st := c.Stats(); st.Replacements != 1 {
		t.Errorf("replacements = %d", st.Replacements)
	}
}

// TestDirtyEvictionWritesBack: evicting an M line pushes it to memory
// first (Table 1 Flush: I,W with no CA).
func TestDirtyEvictionWritesBack(t *testing.T) {
	_, mem, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustWrite(t, c, 0, 0, 0xD1147)
	// Force eviction of line 0 (set 0) with two more set-0 lines.
	mustRead(t, c, 4, 0)
	mustRead(t, c, 8, 0)
	if c.Contains(0) {
		t.Fatal("line 0 not evicted")
	}
	if got := mem.Peek(0); got[0] != 0x47 {
		t.Errorf("memory after eviction = %x", got[:4])
	}
	if st := c.Stats(); st.DirtyEvictions != 1 {
		t.Errorf("dirty evictions = %d", st.DirtyEvictions)
	}
	// The data survives the eviction round trip.
	if v := mustRead(t, c, 0, 0); v != 0xD1147 {
		t.Errorf("read back %#x", v)
	}
}

// TestCleanEvictionSilent: evicting E/S lines causes no bus write.
func TestCleanEvictionSilent(t *testing.T) {
	b, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustRead(t, c, 0, 0)
	mustRead(t, c, 4, 0)
	mustRead(t, c, 8, 0) // evicts one clean line
	if st := b.Stats(); st.Writes != 0 {
		t.Errorf("clean eviction wrote to the bus: %+v", st)
	}
	if st := c.Stats(); st.DirtyEvictions != 0 {
		t.Errorf("dirty evictions = %d", st.DirtyEvictions)
	}
}

// TestWordBounds: out-of-line word indexes are rejected on both paths.
func TestWordBounds(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	if _, err := c.ReadWord(0, testLineSize/4); err == nil {
		t.Error("read beyond line accepted")
	}
	if err := c.WriteWord(0, -1, 0); err == nil {
		t.Error("negative word accepted")
	}
}

// TestWouldUseBus: hits predict no bus, misses and shared-write
// upgrades predict bus.
func TestWouldUseBus(t *testing.T) {
	_, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	if !c0.WouldUseBus(0, false) {
		t.Error("miss predicted as hit")
	}
	mustRead(t, c0, 0, 0)
	if c0.WouldUseBus(0, false) {
		t.Error("read hit predicted as bus access")
	}
	// E-state write is silent.
	if c0.WouldUseBus(0, true) {
		t.Error("E write predicted as bus access")
	}
	// Shared write must announce itself.
	mustRead(t, c1, 0, 0)
	if c0.State(0) != core.Shared {
		t.Fatalf("state = %s", c0.State(0))
	}
	if !c0.WouldUseBus(0, true) {
		t.Error("S write predicted as silent")
	}
}

// TestForEachLine reports exactly the valid lines with copied data.
func TestForEachLine(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustWrite(t, c, 1, 0, 42)
	mustRead(t, c, 2, 0)
	seen := map[bus.Addr]core.State{}
	c.ForEachLine(func(addr bus.Addr, s core.State, data []byte) {
		seen[addr] = s
		data[0] = 0xFF // must not affect the cache
	})
	if len(seen) != 2 || seen[1] != core.Modified || seen[2] != core.Exclusive {
		t.Errorf("seen = %v", seen)
	}
	if v := mustRead(t, c, 1, 0); v != 42 {
		t.Errorf("ForEachLine aliased cache data: %d", v)
	}
}

// TestRecentlyUsed: the MRU line of a full set is recent, the LRU line
// is not (§5.2's replacement-status notion).
func TestRecentlyUsed(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustRead(t, c, 0, 0)
	mustRead(t, c, 4, 0) // line 0 is now LRU in set 0
	sh := c.shard(0)     // both lines sit in set 0, hence one shard
	sh.mu.Lock()
	lru := c.lookup(0)
	mru := c.lookup(4)
	if c.recentlyUsed(lru) {
		t.Error("LRU line reported recent")
	}
	if !c.recentlyUsed(mru) {
		t.Error("MRU line reported stale")
	}
	sh.mu.Unlock()
}

// TestStateQueries: State and Contains track the directory.
func TestStateQueries(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	if c.State(9) != core.Invalid || c.Contains(9) {
		t.Error("absent line not invalid")
	}
	mustRead(t, c, 9, 0)
	if c.State(9) != core.Exclusive {
		t.Errorf("state = %s", c.State(9))
	}
}
