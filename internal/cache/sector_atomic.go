package cache

import (
	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// Update is the sector cache's bus-locked read-modify-write (see
// Cache.Update): the whole operation is one critical section on the
// line's home shard.
func (c *SectorCache) Update(addr bus.Addr, wordIdx int, f func(uint32) uint32) (old, updated uint32, err error) {
	if err := c.checkWord(wordIdx); err != nil {
		return 0, 0, err
	}
	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)

	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.Reads++
	if e, si := c.lookup(addr); e != nil && e.subs[si].state.Valid() {
		old = word(e.subs[si].data, wordIdx)
		sh.stats.ReadHits++
		c.touch(sh, e)
		sh.mu.Unlock()
	} else {
		sh.mu.Unlock()
		data, ferr := c.fillSub(addr, core.LocalRead)
		if ferr != nil {
			return 0, 0, ferr
		}
		old = word(data, wordIdx)
	}

	updated = f(old)
	sh.mu.Lock()
	sh.stats.Writes++
	sh.mu.Unlock()
	if err := c.writeHeld(addr, wordIdx, updated); err != nil {
		return 0, 0, err
	}
	return old, updated, nil
}

// FetchAdd atomically adds delta to the word and returns the previous
// value.
func (c *SectorCache) FetchAdd(addr bus.Addr, wordIdx int, delta uint32) (uint32, error) {
	old, _, err := c.Update(addr, wordIdx, func(cur uint32) uint32 { return cur + delta })
	return old, err
}

// CompareAndSwap atomically replaces the word with new if it equals
// old.
func (c *SectorCache) CompareAndSwap(addr bus.Addr, wordIdx int, old, new uint32) (bool, error) {
	swapped := false
	_, _, err := c.Update(addr, wordIdx, func(cur uint32) uint32 {
		if cur == old {
			swapped = true
			return new
		}
		return cur
	})
	return swapped, err
}
