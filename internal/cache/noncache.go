package cache

import (
	"encoding/binary"
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// Uncached is a bus master without a cache — an I/O processor or DMA
// engine (the "**" rows of Table 1). It never retains data and never
// responds to bus events ("a non-caching unit never responds", §3.3),
// so it is not attached as a snooper. Its reads appear to caches as
// column 7, its writes as columns 9 or 10; an owning cache intervenes
// to supply or capture the data, which is how an I/O processor sees a
// coherent memory image without participating in the protocol.
type Uncached struct {
	id  int
	bus bus.Fabric
	// broadcast selects column 10 writes (holders may update
	// themselves) over column 9 writes (holders must invalidate).
	broadcast bool
	onWrite   func(addr bus.Addr, wordIdx int, val uint32)

	mu    sync.Mutex
	stats UncachedStats
}

// UncachedStats counts an uncached master's traffic.
type UncachedStats struct {
	Reads, Writes int64
	StallNanos    int64
}

// NewUncached creates a non-caching bus master. The id must be unique
// among all masters on the bus.
func NewUncached(id int, b bus.Fabric, broadcast bool, onWrite func(addr bus.Addr, wordIdx int, val uint32)) *Uncached {
	return &Uncached{id: id, bus: b, broadcast: broadcast, onWrite: onWrite}
}

// ID returns the master id.
func (u *Uncached) ID() int { return u.id }

// Stats returns a snapshot of the counters.
func (u *Uncached) Stats() UncachedStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

// ReadWord reads one word through the bus (column 7: ~CA,~IM,~BC). If
// a cache owns the line it intervenes (DI); otherwise memory responds.
func (u *Uncached) ReadWord(addr bus.Addr, wordIdx int) (uint32, error) {
	if wordIdx < 0 || (wordIdx+1)*4 > u.bus.LineSize() {
		return 0, fmt.Errorf("uncached %d: word %d outside line", u.id, wordIdx)
	}
	tx := &bus.Transaction{MasterID: u.id, Signals: 0, Addr: addr, Op: core.BusRead}
	res, err := u.bus.Execute(tx)
	if err != nil {
		return 0, err
	}
	u.mu.Lock()
	u.stats.Reads++
	u.stats.StallNanos += res.StallCost()
	u.mu.Unlock()
	return binary.LittleEndian.Uint32(res.Data[wordIdx*4:]), nil
}

// WriteWord writes one word through the bus (column 9 or, with
// broadcast, column 10). An owning cache captures the write; with
// broadcast, holders may connect and update their copies.
func (u *Uncached) WriteWord(addr bus.Addr, wordIdx int, val uint32) error {
	if wordIdx < 0 || (wordIdx+1)*4 > u.bus.LineSize() {
		return fmt.Errorf("uncached %d: word %d outside line", u.id, wordIdx)
	}
	sig := core.SigIM
	if u.broadcast {
		sig |= core.SigBC
	}
	tx := &bus.Transaction{
		MasterID: u.id,
		Signals:  sig,
		Addr:     addr,
		Op:       core.BusWrite,
		Partial:  &bus.PartialWrite{Word: wordIdx, Val: val},
	}
	u.bus.Acquire(addr, u.id)
	res, err := u.bus.ExecuteHeld(tx)
	if err == nil && u.onWrite != nil {
		u.onWrite(addr, wordIdx, val)
	}
	u.bus.Release(addr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.stats.Writes++
	u.stats.StallNanos += res.StallCost()
	u.mu.Unlock()
	return nil
}
