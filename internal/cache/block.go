package cache

import (
	"fmt"

	"futurebus/internal/bus"
)

// Line crossers (§5.1): "a processor operation which makes a reference
// which overlaps 2 or more lines. It should be clear that the
// processor/cache interface must be able to treat this as a separate
// transaction for each line involved, and to generate bus transactions
// on that basis." ReadBlock and WriteBlock are that interface: a
// multi-word access is decomposed into per-line accesses, each of which
// follows the per-line protocol independently — so a block can end up
// spanning lines in different states, fetched from different sources
// (one line from memory, the next from an intervening owner), or even
// governed by different per-region policies.
//
// The decomposition is NOT atomic across lines, exactly as on the real
// bus: another master may write line k+1 between our accesses to lines
// k and k+1. Per-line coherence is still guaranteed.

// wordPos advances a (line, word) position by step words.
func wordPos(addr bus.Addr, word, wordsPerLine, step int) (bus.Addr, int) {
	idx := word + step
	return addr + bus.Addr(idx/wordsPerLine), idx % wordsPerLine
}

// ReadBlock reads len(dst) consecutive words starting at (addr, word),
// crossing line boundaries as separate per-line transactions.
func (c *Cache) ReadBlock(addr bus.Addr, word int, dst []uint32) error {
	wpl := c.bus.LineSize() / 4
	if word < 0 || word >= wpl {
		return fmt.Errorf("cache %d: block start word %d outside line", c.id, word)
	}
	for i := range dst {
		a, w := wordPos(addr, word, wpl, i)
		v, err := c.ReadWord(a, w)
		if err != nil {
			return fmt.Errorf("cache %d: block read at %#x.%d: %w", c.id, uint64(a), w, err)
		}
		dst[i] = v
	}
	return nil
}

// WriteBlock writes len(src) consecutive words starting at (addr,
// word), crossing line boundaries as separate per-line transactions.
func (c *Cache) WriteBlock(addr bus.Addr, word int, src []uint32) error {
	wpl := c.bus.LineSize() / 4
	if word < 0 || word >= wpl {
		return fmt.Errorf("cache %d: block start word %d outside line", c.id, word)
	}
	for i, v := range src {
		a, w := wordPos(addr, word, wpl, i)
		if err := c.WriteWord(a, w, v); err != nil {
			return fmt.Errorf("cache %d: block write at %#x.%d: %w", c.id, uint64(a), w, err)
		}
	}
	return nil
}

// ReadBlock is the uncached master's line-crossing read (§5.1 applies
// to every processor/bus interface, cached or not).
func (u *Uncached) ReadBlock(addr bus.Addr, word int, dst []uint32) error {
	wpl := u.bus.LineSize() / 4
	if word < 0 || word >= wpl {
		return fmt.Errorf("uncached %d: block start word %d outside line", u.id, word)
	}
	for i := range dst {
		a, w := wordPos(addr, word, wpl, i)
		v, err := u.ReadWord(a, w)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// WriteBlock is the uncached master's line-crossing write.
func (u *Uncached) WriteBlock(addr bus.Addr, word int, src []uint32) error {
	wpl := u.bus.LineSize() / 4
	if word < 0 || word >= wpl {
		return fmt.Errorf("uncached %d: block start word %d outside line", u.id, word)
	}
	for i, v := range src {
		a, w := wordPos(addr, word, wpl, i)
		if err := u.WriteWord(a, w, v); err != nil {
			return err
		}
	}
	return nil
}
