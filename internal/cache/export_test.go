package cache

import (
	"futurebus/internal/bus"
	"futurebus/internal/core"
)

// forceLine installs a line directly in the directory (tests only): the
// conformance harness uses it to place a cache in an exact MOESI state
// before firing one event at it.
func (c *Cache) forceLine(addr bus.Addr, s core.State, data []byte) {
	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !s.Valid() {
		if l := c.lookup(addr); l != nil {
			l.state = core.Invalid
		}
		return
	}
	v := c.victim(addr)
	v.addr = addr
	v.state = s
	v.data = append(v.data[:0], data...)
	c.touch(sh, v)
}
