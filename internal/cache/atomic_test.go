package cache

import (
	"sync"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// TestFetchAddSequential: the RMW primitives behave on one cache.
func TestFetchAddSequential(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	for i := 0; i < 10; i++ {
		old, err := c.FetchAdd(1, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if old != uint32(2*i) {
			t.Fatalf("iteration %d: old = %d", i, old)
		}
	}
	if v := mustRead(t, c, 1, 0); v != 20 {
		t.Fatalf("final value %d", v)
	}
}

// TestCompareAndSwap: success and failure paths.
func TestCompareAndSwap(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustWrite(t, c, 2, 0, 5)
	ok, err := c.CompareAndSwap(2, 0, 5, 9)
	if err != nil || !ok {
		t.Fatalf("CAS(5→9): %t, %v", ok, err)
	}
	ok, err = c.CompareAndSwap(2, 0, 5, 11)
	if err != nil || ok {
		t.Fatalf("stale CAS succeeded: %t, %v", ok, err)
	}
	if v := mustRead(t, c, 2, 0); v != 9 {
		t.Fatalf("value %d", v)
	}
}

// TestFetchAddConcurrent: N goroutine processors incrementing one
// shared counter through their own caches lose no increments — the
// bus-locked RMW is atomic across the machine. Run with -race.
func TestFetchAddConcurrent(t *testing.T) {
	const procs, perProc = 4, 500
	_, _, cs := rig(t, procs, protocols.MOESI, smallCfg())
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *Cache) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if _, err := c.FetchAdd(7, 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if v := mustRead(t, cs[0], 7, 0); v != procs*perProc {
		t.Fatalf("counter = %d, want %d (lost increments)", v, procs*perProc)
	}
}

// TestFetchAddMixedProtocols: atomicity holds across different class
// members and an uncached master.
func TestFetchAddMixedProtocols(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	boards := []interface {
		Update(bus.Addr, int, func(uint32) uint32) (uint32, uint32, error)
	}{
		New(0, b, protocols.MOESI(), smallCfg()),
		New(1, b, protocols.MOESIInvalidate(), smallCfg()),
		New(2, b, protocols.Dragon(), smallCfg()),
		NewUncached(3, b, false, nil),
	}
	const perBoard = 300
	var wg sync.WaitGroup
	for _, board := range boards {
		wg.Add(1)
		go func(board interface {
			Update(bus.Addr, int, func(uint32) uint32) (uint32, uint32, error)
		}) {
			defer wg.Done()
			for i := 0; i < perBoard; i++ {
				if _, _, err := board.Update(3, 1, func(v uint32) uint32 { return v + 1 }); err != nil {
					t.Error(err)
					return
				}
			}
		}(board)
	}
	wg.Wait()
	u := boards[3].(*Uncached)
	v, err := u.ReadWord(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != uint32(len(boards)*perBoard) {
		t.Fatalf("counter = %d, want %d", v, len(boards)*perBoard)
	}
}

// TestCleanCommand: CmdClean pushes a dirty line to memory, the owner
// keeps an unowned copy, sharers survive.
func TestCleanCommand(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	owner := New(0, b, protocols.MOESI(), smallCfg())
	sharer := New(1, b, protocols.MOESI(), smallCfg())
	dma := NewUncached(9, b, false, nil)

	mustWrite(t, owner, 5, 0, 0xAB) // owner: M, memory stale
	if mem.Peek(5)[0] == 0xAB {
		t.Fatal("setup: memory already current")
	}
	if err := dma.Clean(5); err != nil {
		t.Fatal(err)
	}
	if mem.Peek(5)[0] != 0xAB {
		t.Error("clean did not reach memory")
	}
	if owner.State(5) != core.Shared {
		t.Errorf("owner after clean: %s", owner.State(5))
	}

	// With a sharer: clean from O keeps both copies.
	mustWrite(t, owner, 6, 0, 0xCD)
	mustRead(t, sharer, 6, 0) // owner M→O
	if err := CleanLine(b, 9, 6); err != nil {
		t.Fatal(err)
	}
	if mem.Peek(6)[0] != 0xCD {
		t.Error("clean of O line did not reach memory")
	}
	if !owner.Contains(6) || !sharer.Contains(6) {
		t.Error("clean invalidated copies; it must only write back")
	}
	if owner.State(6).OwnedCopy() {
		t.Errorf("owner still owns after clean: %s", owner.State(6))
	}

	// Cleaning an unowned or absent line is a cheap no-op.
	if err := dma.Clean(6); err != nil {
		t.Fatal(err)
	}
	if err := dma.Clean(0x999); err != nil {
		t.Fatal(err)
	}
}

// TestUncachedUpdate: the DMA RMW reads through an owner and writes
// back through its capture.
func TestUncachedUpdate(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), smallCfg())
	u := NewUncached(1, b, false, nil)
	mustWrite(t, c, 4, 0, 10) // dirty in cache
	old, updated, err := u.Update(4, 0, func(v uint32) uint32 { return v * 3 })
	if err != nil {
		t.Fatal(err)
	}
	if old != 10 || updated != 30 {
		t.Fatalf("update saw %d→%d", old, updated)
	}
	if v := mustRead(t, c, 4, 0); v != 30 {
		t.Fatalf("owner has %d", v)
	}
}

// TestTransitionCounts: the instrumentation records the MOESI walk.
func TestTransitionCounts(t *testing.T) {
	_, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustRead(t, c0, 1, 0)     // I→E
	mustWrite(t, c0, 1, 0, 1) // E→M
	mustRead(t, c1, 1, 0)     // c0: M→O; c1: I→S
	st0 := c0.Stats()
	if st0.Transitions[core.Invalid][core.Exclusive] != 1 {
		t.Errorf("I→E = %d", st0.Transitions[core.Invalid][core.Exclusive])
	}
	if st0.Transitions[core.Exclusive][core.Modified] != 1 {
		t.Errorf("E→M = %d", st0.Transitions[core.Exclusive][core.Modified])
	}
	if st0.Transitions[core.Modified][core.Owned] != 1 {
		t.Errorf("M→O = %d", st0.Transitions[core.Modified][core.Owned])
	}
	if st1 := c1.Stats(); st1.Transitions[core.Invalid][core.Shared] != 1 {
		t.Errorf("c1 I→S = %d", st1.Transitions[core.Invalid][core.Shared])
	}
	census := c0.StateCensus()
	if census[core.Owned] != 1 || len(census) != 1 {
		t.Errorf("census = %v", census)
	}
}
