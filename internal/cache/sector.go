package cache

import (
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// SectorCache is the §5.1 sector organisation ([Hill84]): one address
// tag covers a SECTOR of several transfer sub-sectors, and — exactly as
// the paper concludes — "consistency status … [is] necessarily
// associated with the transfer subsector, rather than the address
// sector". Each sub-sector is one system line: it is fetched,
// broadcast, invalidated and owned independently, so the snooping side
// is indistinguishable from a plain cache; what changes is allocation
// (tags are per sector, so a sector miss evicts a whole resident
// sector) and tag economy (a quarter of the tags for 4 sub-sectors).
type SectorCache struct {
	id     int
	bus    *bus.Bus
	policy core.Policy
	cfg    SectorConfig
	// obs and busID are inherited from the bus (see Cache).
	obs   *obs.Recorder
	busID int

	mu    sync.Mutex
	sets  [][]sectorEntry
	clock uint64
	stats SectorStats
}

// SectorConfig parameterises a sector cache.
type SectorConfig struct {
	// Sets and Ways organise the SECTOR directory; capacity is
	// Sets × Ways × SubSectors × line size.
	Sets, Ways int
	// SubSectors is the number of transfer sub-sectors (system lines)
	// per address sector.
	SubSectors int
	// OnWrite is the golden-image hook (see Config.OnWrite).
	OnWrite func(addr bus.Addr, wordIdx int, val uint32)
}

// SectorStats counts sector-cache activity.
type SectorStats struct {
	Reads, Writes         int64
	ReadHits, WriteHits   int64
	SubMisses             int64 // sector present, sub-sector absent
	SectorMisses          int64 // no tag match: allocate a sector
	SectorEvictions       int64
	DirtySubEvictions     int64
	SnoopHits             int64
	InvalidationsReceived int64
	UpdatesReceived       int64
	InterventionsSupplied int64
	StallNanos            int64
}

// AsStats converts sector counters to the comparable plain-cache view:
// misses are derived (Reads−ReadHits), sector evictions map to
// Replacements, and dirty sub-sector evictions to DirtyEvictions.
// Counters with no plain-cache analogue (SubMisses vs SectorMisses)
// fold into the derived miss totals.
func (s SectorStats) AsStats() Stats {
	return Stats{
		Reads:                 s.Reads,
		Writes:                s.Writes,
		ReadHits:              s.ReadHits,
		WriteHits:             s.WriteHits,
		ReadMisses:            s.Reads - s.ReadHits,
		WriteMisses:           s.Writes - s.WriteHits,
		Replacements:          s.SectorEvictions,
		DirtyEvictions:        s.DirtySubEvictions,
		SnoopHits:             s.SnoopHits,
		InvalidationsReceived: s.InvalidationsReceived,
		UpdatesReceived:       s.UpdatesReceived,
		InterventionsSupplied: s.InterventionsSupplied,
		StallNanos:            s.StallNanos,
	}
}

type sub struct {
	state core.State
	data  []byte
}

type sectorEntry struct {
	valid   bool
	tag     uint64 // sector number (line address / SubSectors)
	subs    []sub
	lastUse uint64
}

// NewSector creates a sector cache and attaches it as a snooper.
func NewSector(id int, b *bus.Bus, policy core.Policy, cfg SectorConfig) *SectorCache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.SubSectors <= 0 {
		panic(fmt.Sprintf("cache: invalid sector geometry %d×%d×%d", cfg.Sets, cfg.Ways, cfg.SubSectors))
	}
	c := &SectorCache{id: id, bus: b, policy: policy, cfg: cfg, obs: b.Recorder(), busID: b.ObsID()}
	c.sets = make([][]sectorEntry, cfg.Sets)
	for i := range c.sets {
		ways := make([]sectorEntry, cfg.Ways)
		for w := range ways {
			ways[w].subs = make([]sub, cfg.SubSectors)
		}
		c.sets[i] = ways
	}
	b.Attach(c)
	return c
}

// ID returns the bus master id.
func (c *SectorCache) ID() int { return c.id }

// Stats returns a snapshot of the counters.
func (c *SectorCache) Stats() SectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// noteStall accounts simulated bus time spent on a transaction this
// cache issued, and emits the stall span. Callers hold c.mu.
func (c *SectorCache) noteStall(addr bus.Addr, cost int64) {
	c.stats.StallNanos += cost
	if rec := c.obs; rec != nil {
		rec.Emit(obs.Event{
			TS: rec.Clock() - cost, Dur: cost, Kind: obs.KindStall,
			Bus: c.busID, Proc: c.id, Addr: uint64(addr),
		})
	}
}

// sectorOf splits a line address into sector number and sub index.
func (c *SectorCache) sectorOf(addr bus.Addr) (uint64, int) {
	n := uint64(c.cfg.SubSectors)
	return uint64(addr) / n, int(uint64(addr) % n)
}

// lookup finds the resident sector entry for a line address (nil if the
// sector is absent). Callers hold c.mu.
func (c *SectorCache) lookup(addr bus.Addr) (*sectorEntry, int) {
	tag, subIdx := c.sectorOf(addr)
	set := c.sets[tag%uint64(c.cfg.Sets)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i], subIdx
		}
	}
	return nil, subIdx
}

// subState returns the consistency state of a line (Invalid when the
// sector or sub-sector is absent).
func (c *SectorCache) subState(addr bus.Addr) core.State {
	if e, si := c.lookup(addr); e != nil {
		return e.subs[si].state
	}
	return core.Invalid
}

// State reports the line's state (exported for tests and checkers).
func (c *SectorCache) State(addr bus.Addr) core.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subState(addr)
}

// ForEachLine visits every valid sub-sector as a line (so the standard
// consistency checker invariants apply unchanged).
func (c *SectorCache) ForEachLine(fn func(addr bus.Addr, s core.State, data []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, set := range c.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			for si := range set[i].subs {
				s := &set[i].subs[si]
				if s.state.Valid() {
					addr := bus.Addr(set[i].tag*uint64(c.cfg.SubSectors) + uint64(si))
					fn(addr, s.state, append([]byte(nil), s.data...))
				}
			}
		}
	}
}

// touch refreshes the sector's LRU position. Callers hold c.mu.
func (c *SectorCache) touch(e *sectorEntry) {
	c.clock++
	e.lastUse = c.clock
}

// WouldUseBus predicts whether an access would issue a bus transaction
// (see Cache.WouldUseBus).
func (c *SectorCache) WouldUseBus(addr bus.Addr, write bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, si := c.lookup(addr)
	if e == nil || !e.subs[si].state.Valid() {
		return true
	}
	event := core.LocalRead
	if write {
		event = core.LocalWrite
	}
	action, ok := c.policy.ChooseLocal(e.subs[si].state, event)
	return !ok || action.NeedsBus()
}

// ReadWord performs a processor read of one word.
func (c *SectorCache) ReadWord(addr bus.Addr, wordIdx int) (uint32, error) {
	if err := c.checkWord(wordIdx); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.stats.Reads++
	if e, si := c.lookup(addr); e != nil && e.subs[si].state.Valid() {
		c.stats.ReadHits++
		c.touch(e)
		v := word(e.subs[si].data, wordIdx)
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()

	c.bus.Acquire()
	defer c.bus.Release()
	data, err := c.fillSub(addr, core.LocalRead)
	if err != nil {
		return 0, err
	}
	return word(data, wordIdx), nil
}

// WriteWord performs a processor write of one word.
func (c *SectorCache) WriteWord(addr bus.Addr, wordIdx int, val uint32) error {
	if err := c.checkWord(wordIdx); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Writes++
	if e, si := c.lookup(addr); e != nil && e.subs[si].state.Valid() {
		action, ok := c.policy.ChooseLocal(e.subs[si].state, core.LocalWrite)
		if !ok {
			st := e.subs[si].state
			c.mu.Unlock()
			return fmt.Errorf("sector cache %d: no write action for state %s", c.id, st)
		}
		if !action.NeedsBus() {
			e.subs[si].state = action.Next.Resolve(false)
			putWord(e.subs[si].data, wordIdx, val)
			c.touch(e)
			c.stats.WriteHits++
			c.note(addr, wordIdx, val)
			c.mu.Unlock()
			return nil
		}
	}
	c.mu.Unlock()

	c.bus.Acquire()
	defer c.bus.Release()
	return c.writeHeld(addr, wordIdx, val)
}

// writeHeld re-examines and writes with the bus held.
func (c *SectorCache) writeHeld(addr bus.Addr, wordIdx int, val uint32) error {
	c.mu.Lock()
	e, si := c.lookup(addr)
	if e == nil || !e.subs[si].state.Valid() {
		c.mu.Unlock()
		return c.writeMissHeld(addr, wordIdx, val)
	}
	state := e.subs[si].state
	action, ok := c.policy.ChooseLocal(state, core.LocalWrite)
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("sector cache %d: no write action for state %s", c.id, state)
	}
	c.stats.WriteHits++
	if !action.NeedsBus() {
		e.subs[si].state = action.Next.Resolve(false)
		putWord(e.subs[si].data, wordIdx, val)
		c.touch(e)
		c.note(addr, wordIdx, val)
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	tx := &bus.Transaction{MasterID: c.id, Signals: action.Assert, Addr: addr, Op: action.Op}
	if action.Op == core.BusWrite {
		tx.Partial = &bus.PartialWrite{Word: wordIdx, Val: val}
	}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, si = c.lookup(addr)
	if e == nil {
		return fmt.Errorf("sector cache %d: sector of %#x vanished during upgrade", c.id, uint64(addr))
	}
	e.subs[si].state = action.Next.Resolve(res.CH)
	putWord(e.subs[si].data, wordIdx, val)
	c.touch(e)
	c.noteStall(addr, res.Cost)
	c.note(addr, wordIdx, val)
	return nil
}

// writeMissHeld handles a write to an absent sub-sector.
func (c *SectorCache) writeMissHeld(addr bus.Addr, wordIdx int, val uint32) error {
	action, ok := c.policy.ChooseLocal(core.Invalid, core.LocalWrite)
	if !ok {
		return fmt.Errorf("sector cache %d: no write-miss action", c.id)
	}
	switch action.Op {
	case core.BusRead: // read-for-modify
		if _, err := c.fillSubWith(addr, action); err != nil {
			return err
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		e, si := c.lookup(addr)
		if e == nil {
			return fmt.Errorf("sector cache %d: RFO fill of %#x vanished", c.id, uint64(addr))
		}
		putWord(e.subs[si].data, wordIdx, val)
		c.touch(e)
		c.note(addr, wordIdx, val)
		return nil
	case core.BusReadThenWrite:
		if _, err := c.fillSub(addr, core.LocalRead); err != nil {
			return err
		}
		return c.writeHeld(addr, wordIdx, val)
	case core.BusWrite:
		// Write past the cache (write-through / non-allocating): a
		// partial word write, nothing retained.
		res, err := c.bus.ExecuteHeld(&bus.Transaction{
			MasterID: c.id,
			Signals:  action.Assert,
			Addr:     addr,
			Op:       core.BusWrite,
			Partial:  &bus.PartialWrite{Word: wordIdx, Val: val},
		})
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.noteStall(addr, res.Cost)
		c.mu.Unlock()
		c.note(addr, wordIdx, val)
		return nil
	default:
		return fmt.Errorf("sector cache %d: unsupported write-miss op %v", c.id, action.Op)
	}
}

// fillSub fetches one sub-sector using the policy's read-miss action.
func (c *SectorCache) fillSub(addr bus.Addr, event core.LocalEvent) ([]byte, error) {
	action, ok := c.policy.ChooseLocal(core.Invalid, event)
	if !ok {
		return nil, fmt.Errorf("sector cache %d: no miss action", c.id)
	}
	return c.fillSubWith(addr, action)
}

// fillSubWith fetches addr's sub-sector with the bus held: ensure the
// sector is resident (evicting a victim sector wholesale if needed),
// then transfer just the one sub-sector.
func (c *SectorCache) fillSubWith(addr bus.Addr, action core.LocalAction) ([]byte, error) {
	if action.Op != core.BusRead {
		return nil, fmt.Errorf("sector cache %d: miss action %s is not a read", c.id, action)
	}
	c.mu.Lock()
	e, _ := c.lookup(addr)
	if e == nil {
		c.stats.SectorMisses++
		c.mu.Unlock()
		if err := c.allocateSector(addr); err != nil {
			return nil, err
		}
	} else {
		c.stats.SubMisses++
		c.mu.Unlock()
	}

	tx := &bus.Transaction{MasterID: c.id, Signals: action.Assert, Addr: addr, Op: core.BusRead}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return nil, err
	}
	next := action.Next.Resolve(res.CH)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteStall(addr, res.Cost)
	e, si := c.lookup(addr)
	if e == nil {
		return nil, fmt.Errorf("sector cache %d: allocated sector of %#x vanished", c.id, uint64(addr))
	}
	e.subs[si].state = next
	e.subs[si].data = append(e.subs[si].data[:0], res.Data...)
	c.touch(e)
	return append([]byte(nil), res.Data...), nil
}

// allocateSector makes a sector entry resident for addr, evicting the
// LRU sector of the set if necessary — pushing every owned sub-sector
// back to memory first (this is the sector organisation's cost: one
// conflict can write back several lines). Called with the bus held and
// c.mu unlocked.
func (c *SectorCache) allocateSector(addr bus.Addr) error {
	tag, _ := c.sectorOf(addr)
	c.mu.Lock()
	set := c.sets[tag%uint64(c.cfg.Sets)]
	var victim *sectorEntry
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if victim == nil || set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	var pushes []bus.Transaction
	if victim.valid {
		c.stats.SectorEvictions++
		for si := range victim.subs {
			s := &victim.subs[si]
			if s.state.OwnedCopy() {
				flush, ok := c.policy.ChooseLocal(s.state, core.Flush)
				if !ok {
					c.mu.Unlock()
					return fmt.Errorf("sector cache %d: no flush action for state %s", c.id, s.state)
				}
				c.stats.DirtySubEvictions++
				pushes = append(pushes, bus.Transaction{
					MasterID: c.id,
					Signals:  flush.Assert,
					Addr:     bus.Addr(victim.tag*uint64(c.cfg.SubSectors) + uint64(si)),
					Op:       core.BusWrite,
					Data:     append([]byte(nil), s.data...),
				})
			}
			s.state = core.Invalid
		}
	}
	victim.valid = true
	victim.tag = tag
	for si := range victim.subs {
		victim.subs[si].state = core.Invalid
		if victim.subs[si].data == nil {
			victim.subs[si].data = make([]byte, c.bus.LineSize())
		}
	}
	c.touch(victim)
	c.mu.Unlock()

	for i := range pushes {
		res, err := c.bus.ExecuteHeld(&pushes[i])
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.noteStall(bus.Addr(pushes[i].Addr), res.Cost)
		c.mu.Unlock()
	}
	return nil
}

func (c *SectorCache) checkWord(wordIdx int) error {
	if wordIdx < 0 || (wordIdx+1)*4 > c.bus.LineSize() {
		return fmt.Errorf("sector cache %d: word %d outside %d-byte line", c.id, wordIdx, c.bus.LineSize())
	}
	return nil
}

func (c *SectorCache) note(addr bus.Addr, wordIdx int, val uint32) {
	if c.cfg.OnWrite != nil {
		c.cfg.OnWrite(addr, wordIdx, val)
	}
}
