package cache

import (
	"fmt"
	"sync"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/obs"
)

// SectorCache is the §5.1 sector organisation ([Hill84]): one address
// tag covers a SECTOR of several transfer sub-sectors, and — exactly as
// the paper concludes — "consistency status … [is] necessarily
// associated with the transfer subsector, rather than the address
// sector". Each sub-sector is one system line: it is fetched,
// broadcast, invalidated and owned independently, so the snooping side
// is indistinguishable from a plain cache; what changes is allocation
// (tags are per sector, so a sector miss evicts a whole resident
// sector) and tag economy (a quarter of the tags for 4 sub-sectors).
//
// On an interleaved fabric the directory is guarded per shard, like
// Cache: the fabric's granularity must be a multiple of SubSectors so
// a whole sector (and hence a whole set of the sector directory) is
// homed on one shard.
type SectorCache struct {
	id     int
	bus    bus.Fabric
	policy core.Policy
	cfg    SectorConfig
	// obs is inherited from the fabric (see Cache).
	obs *obs.Recorder
	// nshards/gran mirror the fabric's interleave parameters (gran in
	// lines, as the fabric counts).
	nshards, gran uint64

	// shards holds per-fabric-shard state; sets[tag%Sets] is guarded by
	// the shard homing that set's sectors.
	shards []sectorShard
	sets   [][]sectorEntry
}

// sectorShard is one fabric shard's slice of the sector cache (see
// cacheShard).
type sectorShard struct {
	mu    sync.Mutex
	clock uint64
	stats SectorStats
}

// SectorConfig parameterises a sector cache.
type SectorConfig struct {
	// Sets and Ways organise the SECTOR directory; capacity is
	// Sets × Ways × SubSectors × line size.
	Sets, Ways int
	// SubSectors is the number of transfer sub-sectors (system lines)
	// per address sector.
	SubSectors int
	// OnWrite is the golden-image hook (see Config.OnWrite).
	OnWrite func(addr bus.Addr, wordIdx int, val uint32)
}

// SectorStats counts sector-cache activity.
type SectorStats struct {
	Reads, Writes         int64
	ReadHits, WriteHits   int64
	SubMisses             int64 // sector present, sub-sector absent
	SectorMisses          int64 // no tag match: allocate a sector
	SectorEvictions       int64
	DirtySubEvictions     int64
	SnoopHits             int64
	InvalidationsReceived int64
	UpdatesReceived       int64
	InterventionsSupplied int64
	StallNanos            int64
	// Transitions counts sub-sector state changes, indexed [from][to]
	// in core.State order (see Stats.Transitions).
	Transitions [5][5]int64
}

// Add accumulates other into s (per-shard merge).
func (s *SectorStats) Add(other SectorStats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ReadHits += other.ReadHits
	s.WriteHits += other.WriteHits
	s.SubMisses += other.SubMisses
	s.SectorMisses += other.SectorMisses
	s.SectorEvictions += other.SectorEvictions
	s.DirtySubEvictions += other.DirtySubEvictions
	s.SnoopHits += other.SnoopHits
	s.InvalidationsReceived += other.InvalidationsReceived
	s.UpdatesReceived += other.UpdatesReceived
	s.InterventionsSupplied += other.InterventionsSupplied
	s.StallNanos += other.StallNanos
	for from := range s.Transitions {
		for to := range s.Transitions[from] {
			s.Transitions[from][to] += other.Transitions[from][to]
		}
	}
}

// AsStats converts sector counters to the comparable plain-cache view:
// misses are derived (Reads−ReadHits), sector evictions map to
// Replacements, and dirty sub-sector evictions to DirtyEvictions.
// Counters with no plain-cache analogue (SubMisses vs SectorMisses)
// fold into the derived miss totals.
func (s SectorStats) AsStats() Stats {
	return Stats{
		Reads:                 s.Reads,
		Writes:                s.Writes,
		ReadHits:              s.ReadHits,
		WriteHits:             s.WriteHits,
		ReadMisses:            s.Reads - s.ReadHits,
		WriteMisses:           s.Writes - s.WriteHits,
		Replacements:          s.SectorEvictions,
		DirtyEvictions:        s.DirtySubEvictions,
		SnoopHits:             s.SnoopHits,
		InvalidationsReceived: s.InvalidationsReceived,
		UpdatesReceived:       s.UpdatesReceived,
		InterventionsSupplied: s.InterventionsSupplied,
		StallNanos:            s.StallNanos,
		Transitions:           s.Transitions,
	}
}

type sub struct {
	state core.State
	data  []byte
}

type sectorEntry struct {
	valid   bool
	tag     uint64 // sector number (line address / SubSectors)
	subs    []sub
	lastUse uint64
}

// NewSector creates a sector cache and attaches it as a snooper on
// every fabric shard.
func NewSector(id int, b bus.Fabric, policy core.Policy, cfg SectorConfig) *SectorCache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.SubSectors <= 0 {
		panic(fmt.Sprintf("cache: invalid sector geometry %d×%d×%d", cfg.Sets, cfg.Ways, cfg.SubSectors))
	}
	if b.Shards() > 1 && b.Granularity()%cfg.SubSectors != 0 {
		panic(fmt.Sprintf(
			"cache: sector size %d does not divide interleave granularity %d (a sector would span shards)",
			cfg.SubSectors, b.Granularity()))
	}
	// The sector directory indexes by tag, so the layout constraint is
	// in tag units: granularity/SubSectors tags per interleave run.
	checkLayout("sector cache", cfg.Sets, b, b.Granularity()/cfg.SubSectors)
	c := &SectorCache{
		id: id, bus: b, policy: policy, cfg: cfg, obs: b.Recorder(),
		nshards: uint64(b.Shards()), gran: uint64(b.Granularity()),
	}
	c.shards = make([]sectorShard, c.nshards)
	c.sets = make([][]sectorEntry, cfg.Sets)
	for i := range c.sets {
		ways := make([]sectorEntry, cfg.Ways)
		for w := range ways {
			ways[w].subs = make([]sub, cfg.SubSectors)
		}
		c.sets[i] = ways
	}
	b.Attach(c)
	return c
}

// ID returns the bus master id.
func (c *SectorCache) ID() int { return c.id }

// home maps a line address to its fabric shard (see Cache.home).
func (c *SectorCache) home(addr bus.Addr) int {
	if c.nshards == 1 {
		return 0
	}
	return int((uint64(addr) / c.gran) % c.nshards)
}

// shard returns the sectorShard guarding addr's set.
func (c *SectorCache) shard(addr bus.Addr) *sectorShard { return &c.shards[c.home(addr)] }

func (c *SectorCache) lockAll() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
}

func (c *SectorCache) unlockAll() {
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// Stats returns a snapshot of the counters, summed over shards.
func (c *SectorCache) Stats() SectorStats {
	c.lockAll()
	defer c.unlockAll()
	var total SectorStats
	for i := range c.shards {
		total.Add(c.shards[i].stats)
	}
	return total
}

// noteStall accounts simulated bus time spent on a transaction this
// cache issued, and emits the stall span. Callers hold the shard lock
// guarding addr.
func (c *SectorCache) noteStall(sh *sectorShard, addr bus.Addr, cost int64) {
	sh.stats.StallNanos += cost
	if rec := c.obs; rec != nil {
		// Split-mode stalls include off-bus time, which can exceed the
		// occupancy clock's advance; clamp the span start at 0.
		ts := rec.Clock() - cost
		if ts < 0 {
			ts = 0
		}
		rec.Emit(obs.Event{
			TS: ts, Dur: cost, Kind: obs.KindStall,
			Bus: c.bus.SegmentID(addr), Proc: c.id, Addr: uint64(addr),
		})
	}
}

// setSubState records a sub-sector state change, mirroring
// Cache.setStateTx: the transition matrix counts it and, when tracing
// is on, a KindState event carries the cause, protocol and causing
// transaction. Callers hold the shard lock guarding addr.
func (c *SectorCache) setSubState(sh *sectorShard, addr bus.Addr, s *sub, next core.State, cause string, txid uint64) {
	if s.state == next {
		return
	}
	sh.stats.Transitions[s.state][next]++
	if rec := c.obs; rec != nil {
		rec.Emit(obs.Event{
			TS: rec.Clock(), Kind: obs.KindState, Bus: c.bus.SegmentID(addr), Proc: c.id,
			Addr: uint64(addr), From: s.state.Letter(), To: next.Letter(), Cause: cause,
			Proto: c.policy.Name(), TxID: txid,
		})
	}
	s.state = next
}

// sectorOf splits a line address into sector number and sub index.
func (c *SectorCache) sectorOf(addr bus.Addr) (uint64, int) {
	n := uint64(c.cfg.SubSectors)
	return uint64(addr) / n, int(uint64(addr) % n)
}

// lookup finds the resident sector entry for a line address (nil if the
// sector is absent). Callers hold addr's shard lock.
func (c *SectorCache) lookup(addr bus.Addr) (*sectorEntry, int) {
	tag, subIdx := c.sectorOf(addr)
	set := c.sets[tag%uint64(c.cfg.Sets)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i], subIdx
		}
	}
	return nil, subIdx
}

// subState returns the consistency state of a line (Invalid when the
// sector or sub-sector is absent). Callers hold addr's shard lock.
func (c *SectorCache) subState(addr bus.Addr) core.State {
	if e, si := c.lookup(addr); e != nil {
		return e.subs[si].state
	}
	return core.Invalid
}

// State reports the line's state (exported for tests and checkers).
func (c *SectorCache) State(addr bus.Addr) core.State {
	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return c.subState(addr)
}

// ForEachLine visits every valid sub-sector as a line (so the standard
// consistency checker invariants apply unchanged).
func (c *SectorCache) ForEachLine(fn func(addr bus.Addr, s core.State, data []byte)) {
	c.lockAll()
	defer c.unlockAll()
	for _, set := range c.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			for si := range set[i].subs {
				s := &set[i].subs[si]
				if s.state.Valid() {
					addr := bus.Addr(set[i].tag*uint64(c.cfg.SubSectors) + uint64(si))
					fn(addr, s.state, append([]byte(nil), s.data...))
				}
			}
		}
	}
}

// touch refreshes the sector's LRU position. Callers hold the shard
// lock guarding the sector (per-shard clocks order within a set, and a
// set is homed on one shard).
func (c *SectorCache) touch(sh *sectorShard, e *sectorEntry) {
	sh.clock++
	e.lastUse = sh.clock
}

// WouldUseBus predicts whether an access would issue a bus transaction
// (see Cache.WouldUseBus).
func (c *SectorCache) WouldUseBus(addr bus.Addr, write bool) bool {
	sh := c.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, si := c.lookup(addr)
	if e == nil || !e.subs[si].state.Valid() {
		return true
	}
	event := core.LocalRead
	if write {
		event = core.LocalWrite
	}
	action, ok := c.policy.ChooseLocal(e.subs[si].state, event)
	return !ok || action.NeedsBus()
}

// ReadWord performs a processor read of one word.
func (c *SectorCache) ReadWord(addr bus.Addr, wordIdx int) (uint32, error) {
	if err := c.checkWord(wordIdx); err != nil {
		return 0, err
	}
	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.Reads++
	if e, si := c.lookup(addr); e != nil && e.subs[si].state.Valid() {
		sh.stats.ReadHits++
		c.touch(sh, e)
		v := word(e.subs[si].data, wordIdx)
		sh.mu.Unlock()
		return v, nil
	}
	sh.mu.Unlock()

	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)
	data, err := c.fillSub(addr, core.LocalRead)
	if err != nil {
		return 0, err
	}
	return word(data, wordIdx), nil
}

// WriteWord performs a processor write of one word.
func (c *SectorCache) WriteWord(addr bus.Addr, wordIdx int, val uint32) error {
	if err := c.checkWord(wordIdx); err != nil {
		return err
	}
	sh := c.shard(addr)
	sh.mu.Lock()
	sh.stats.Writes++
	if e, si := c.lookup(addr); e != nil && e.subs[si].state.Valid() {
		action, ok := c.policy.ChooseLocal(e.subs[si].state, core.LocalWrite)
		if !ok {
			st := e.subs[si].state
			sh.mu.Unlock()
			return fmt.Errorf("sector cache %d: no write action for state %s", c.id, st)
		}
		if !action.NeedsBus() {
			c.setSubState(sh, addr, &e.subs[si], action.Next.Resolve(false), "silent-write", 0)
			putWord(e.subs[si].data, wordIdx, val)
			c.touch(sh, e)
			sh.stats.WriteHits++
			c.note(addr, wordIdx, val)
			sh.mu.Unlock()
			return nil
		}
	}
	sh.mu.Unlock()

	c.bus.Acquire(addr, c.id)
	defer c.bus.Release(addr)
	return c.writeHeld(addr, wordIdx, val)
}

// writeHeld re-examines and writes with the bus held.
func (c *SectorCache) writeHeld(addr bus.Addr, wordIdx int, val uint32) error {
	sh := c.shard(addr)
	sh.mu.Lock()
	e, si := c.lookup(addr)
	if e == nil || !e.subs[si].state.Valid() {
		sh.mu.Unlock()
		return c.writeMissHeld(addr, wordIdx, val)
	}
	state := e.subs[si].state
	action, ok := c.policy.ChooseLocal(state, core.LocalWrite)
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("sector cache %d: no write action for state %s", c.id, state)
	}
	sh.stats.WriteHits++
	if !action.NeedsBus() {
		c.setSubState(sh, addr, &e.subs[si], action.Next.Resolve(false), "write-hit", 0)
		putWord(e.subs[si].data, wordIdx, val)
		c.touch(sh, e)
		c.note(addr, wordIdx, val)
		sh.mu.Unlock()
		return nil
	}
	sh.mu.Unlock()

	tx := &bus.Transaction{MasterID: c.id, Signals: action.Assert, Addr: addr, Op: action.Op}
	if action.Op == core.BusWrite {
		tx.Partial = &bus.PartialWrite{Word: wordIdx, Val: val}
	}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, si = c.lookup(addr)
	if e == nil {
		return fmt.Errorf("sector cache %d: sector of %#x vanished during upgrade", c.id, uint64(addr))
	}
	c.setSubState(sh, addr, &e.subs[si], action.Next.Resolve(res.CH), "write-upgrade", res.TxID)
	putWord(e.subs[si].data, wordIdx, val)
	c.touch(sh, e)
	c.noteStall(sh, addr, res.StallCost())
	c.note(addr, wordIdx, val)
	return nil
}

// writeMissHeld handles a write to an absent sub-sector.
func (c *SectorCache) writeMissHeld(addr bus.Addr, wordIdx int, val uint32) error {
	action, ok := c.policy.ChooseLocal(core.Invalid, core.LocalWrite)
	if !ok {
		return fmt.Errorf("sector cache %d: no write-miss action", c.id)
	}
	sh := c.shard(addr)
	switch action.Op {
	case core.BusRead: // read-for-modify
		if _, err := c.fillSubWith(addr, action); err != nil {
			return err
		}
		sh.mu.Lock()
		defer sh.mu.Unlock()
		e, si := c.lookup(addr)
		if e == nil {
			return fmt.Errorf("sector cache %d: RFO fill of %#x vanished", c.id, uint64(addr))
		}
		putWord(e.subs[si].data, wordIdx, val)
		c.touch(sh, e)
		c.note(addr, wordIdx, val)
		return nil
	case core.BusReadThenWrite:
		if _, err := c.fillSub(addr, core.LocalRead); err != nil {
			return err
		}
		return c.writeHeld(addr, wordIdx, val)
	case core.BusWrite:
		// Write past the cache (write-through / non-allocating): a
		// partial word write, nothing retained.
		res, err := c.bus.ExecuteHeld(&bus.Transaction{
			MasterID: c.id,
			Signals:  action.Assert,
			Addr:     addr,
			Op:       core.BusWrite,
			Partial:  &bus.PartialWrite{Word: wordIdx, Val: val},
		})
		if err != nil {
			return err
		}
		sh.mu.Lock()
		c.noteStall(sh, addr, res.StallCost())
		sh.mu.Unlock()
		c.note(addr, wordIdx, val)
		return nil
	default:
		return fmt.Errorf("sector cache %d: unsupported write-miss op %v", c.id, action.Op)
	}
}

// fillSub fetches one sub-sector using the policy's read-miss action.
func (c *SectorCache) fillSub(addr bus.Addr, event core.LocalEvent) ([]byte, error) {
	action, ok := c.policy.ChooseLocal(core.Invalid, event)
	if !ok {
		return nil, fmt.Errorf("sector cache %d: no miss action", c.id)
	}
	return c.fillSubWith(addr, action)
}

// fillSubWith fetches addr's sub-sector with the bus held: ensure the
// sector is resident (evicting a victim sector wholesale if needed),
// then transfer just the one sub-sector.
func (c *SectorCache) fillSubWith(addr bus.Addr, action core.LocalAction) ([]byte, error) {
	if action.Op != core.BusRead {
		return nil, fmt.Errorf("sector cache %d: miss action %s is not a read", c.id, action)
	}
	sh := c.shard(addr)
	sh.mu.Lock()
	e, _ := c.lookup(addr)
	if e == nil {
		sh.stats.SectorMisses++
		sh.mu.Unlock()
		if err := c.allocateSector(addr); err != nil {
			return nil, err
		}
	} else {
		sh.stats.SubMisses++
		sh.mu.Unlock()
	}

	tx := &bus.Transaction{MasterID: c.id, Signals: action.Assert, Addr: addr, Op: core.BusRead}
	res, err := c.bus.ExecuteHeld(tx)
	if err != nil {
		return nil, err
	}
	next := action.Next.Resolve(res.CH)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.noteStall(sh, addr, res.StallCost())
	e, si := c.lookup(addr)
	if e == nil {
		return nil, fmt.Errorf("sector cache %d: allocated sector of %#x vanished", c.id, uint64(addr))
	}
	c.setSubState(sh, addr, &e.subs[si], next, "fill", res.TxID)
	e.subs[si].data = append(e.subs[si].data[:0], res.Data...)
	c.touch(sh, e)
	return append([]byte(nil), res.Data...), nil
}

// allocateSector makes a sector entry resident for addr, evicting the
// LRU sector of the set if necessary — pushing every owned sub-sector
// back to memory first (this is the sector organisation's cost: one
// conflict can write back several lines). Called with the bus held and
// the shard unlocked. The victim shares addr's set and so its home
// shard (the fabric interleaves at whole-sector granularity), keeping
// every push on the bus tenure already held.
func (c *SectorCache) allocateSector(addr bus.Addr) error {
	tag, _ := c.sectorOf(addr)
	sh := c.shard(addr)
	sh.mu.Lock()
	set := c.sets[tag%uint64(c.cfg.Sets)]
	var victim *sectorEntry
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if victim == nil || set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	var pushes []bus.Transaction
	if victim.valid {
		sh.stats.SectorEvictions++
		for si := range victim.subs {
			s := &victim.subs[si]
			subAddr := bus.Addr(victim.tag*uint64(c.cfg.SubSectors) + uint64(si))
			cause := "evict-clean"
			if s.state.OwnedCopy() {
				flush, ok := c.policy.ChooseLocal(s.state, core.Flush)
				if !ok {
					sh.mu.Unlock()
					return fmt.Errorf("sector cache %d: no flush action for state %s", c.id, s.state)
				}
				sh.stats.DirtySubEvictions++
				cause = "evict"
				pushes = append(pushes, bus.Transaction{
					MasterID: c.id,
					Signals:  flush.Assert,
					Addr:     subAddr,
					Op:       core.BusWrite,
					Data:     append([]byte(nil), s.data...),
				})
			}
			c.setSubState(sh, subAddr, s, core.Invalid, cause, 0)
		}
	}
	victim.valid = true
	victim.tag = tag
	for si := range victim.subs {
		victim.subs[si].state = core.Invalid
		if victim.subs[si].data == nil {
			victim.subs[si].data = make([]byte, c.bus.LineSize())
		}
	}
	c.touch(sh, victim)
	sh.mu.Unlock()

	for i := range pushes {
		res, err := c.bus.ExecuteHeld(&pushes[i])
		if err != nil {
			return err
		}
		sh.mu.Lock()
		c.noteStall(sh, pushes[i].Addr, res.StallCost())
		sh.mu.Unlock()
	}
	return nil
}

func (c *SectorCache) checkWord(wordIdx int) error {
	if wordIdx < 0 || (wordIdx+1)*4 > c.bus.LineSize() {
		return fmt.Errorf("sector cache %d: word %d outside %d-byte line", c.id, wordIdx, c.bus.LineSize())
	}
	return nil
}

func (c *SectorCache) note(addr bus.Addr, wordIdx int, val uint32) {
	if c.cfg.OnWrite != nil {
		c.cfg.OnWrite(addr, wordIdx, val)
	}
}
