package cache

import (
	"bytes"
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// TestFetchLineHeld: present lines return copies; absent lines fill via
// a normal read miss, all under a held bus.
func TestFetchLineHeld(t *testing.T) {
	b, mem, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	mustWrite(t, c1, 4, 0, 0x42) // dirty elsewhere

	b.Acquire(4, -1)
	data, err := c0.FetchLineHeld(4)
	b.Release(4)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x42 {
		t.Errorf("fetched %x (intervention missed)", data[:4])
	}
	if c0.State(4) != core.Shared || c1.State(4) != core.Owned {
		t.Errorf("states %s/%s", c0.State(4), c1.State(4))
	}
	// Mutating the returned copy must not touch the cache.
	data[0] = 0xFF
	if v := mustRead(t, c0, 4, 0); v != 0x42 {
		t.Errorf("aliased fetch: %#x", v)
	}
	// A second fetch is served locally (no new transaction).
	before := b.Stats().Transactions
	b.Acquire(4, -1)
	if _, err := c0.FetchLineHeld(4); err != nil {
		t.Fatal(err)
	}
	b.Release(4)
	if b.Stats().Transactions != before {
		t.Error("present-line fetch used the bus")
	}
	_ = mem
}

// TestAbsorbLineHeld: miss, shared-hit and silent paths all end in M
// with the absorbed contents, and other copies die.
func TestAbsorbLineHeld(t *testing.T) {
	b, _, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	line := bytes.Repeat([]byte{0xAB}, testLineSize)

	// Miss path (RFO fill then overwrite).
	b.Acquire(7, -1)
	if err := c0.AbsorbLineHeld(7, line); err != nil {
		t.Fatal(err)
	}
	b.Release(7)
	if c0.State(7) != core.Modified {
		t.Fatalf("after miss absorb: %s", c0.State(7))
	}

	// Shared-hit path: both hold S, absorb upgrades with an
	// address-only invalidate.
	mustRead(t, c1, 7, 0) // c0: M→O, c1: S
	mustRead(t, c0, 7, 0)
	line2 := bytes.Repeat([]byte{0xCD}, testLineSize)
	b.Acquire(7, -1)
	if err := c0.AbsorbLineHeld(7, line2); err != nil {
		t.Fatal(err)
	}
	b.Release(7)
	if c0.State(7) != core.Modified {
		t.Fatalf("after hit absorb: %s", c0.State(7))
	}
	if c1.Contains(7) {
		t.Error("other copy survived the absorb upgrade")
	}
	if v := mustRead(t, c0, 7, 0); v != 0xCDCDCDCD {
		t.Errorf("absorbed data %#x", v)
	}

	// Silent path (already M).
	line3 := bytes.Repeat([]byte{0xEF}, testLineSize)
	before := b.Stats().Transactions
	b.Acquire(7, -1)
	if err := c0.AbsorbLineHeld(7, line3); err != nil {
		t.Fatal(err)
	}
	b.Release(7)
	if b.Stats().Transactions != before {
		t.Error("silent absorb used the bus")
	}

	// Wrong-size payload is rejected.
	b.Acquire(7, -1)
	err := c0.AbsorbLineHeld(7, []byte{1})
	b.Release(7)
	if err == nil {
		t.Error("short absorb accepted")
	}
}

// TestInvalidateHeld drops a line silently.
func TestInvalidateHeld(t *testing.T) {
	b, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	mustRead(t, c, 3, 0)
	before := b.Stats().Transactions
	b.Acquire(3, -1)
	c.InvalidateHeld(3)
	c.InvalidateHeld(99) // absent: no-op (same single bus regardless of address)
	b.Release(3)
	if c.Contains(3) {
		t.Error("line survived InvalidateHeld")
	}
	if b.Stats().Transactions != before {
		t.Error("InvalidateHeld used the bus")
	}
}

// TestAccessors covers the trivial getters.
func TestAccessors(t *testing.T) {
	b, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	if c.ID() != 0 || c.LineSize() != testLineSize || c.Policy().Name() != "MOESI" {
		t.Errorf("accessors: %d %d %s", c.ID(), c.LineSize(), c.Policy().Name())
	}
	if DefaultConfig().Sets == 0 {
		t.Error("DefaultConfig has no sets")
	}
	u := NewUncached(9, b, false, nil)
	if u.ID() != 9 {
		t.Errorf("uncached id %d", u.ID())
	}
}

// TestSectorWriteUpgrade: a sector cache's shared write goes through
// the bus (broadcast with the MOESI policy) and takes ownership of the
// sub-sector.
func TestSectorWriteUpgrade(t *testing.T) {
	_, _, sc, pc := sectorRig(t)
	mustWrite(t, pc, 1, 0, 0x10) // plain cache owns
	if _, err := sc.ReadWord(1, 0); err != nil {
		t.Fatal(err)
	}
	if sc.State(1) != core.Shared {
		t.Fatalf("setup: %s", sc.State(1))
	}
	if err := sc.WriteWord(1, 1, 0x20); err != nil {
		t.Fatal(err)
	}
	if sc.State(1) != core.Owned {
		t.Errorf("after broadcast write: %s", sc.State(1))
	}
	// The plain cache's copy received the update.
	if v := mustRead(t, pc, 1, 1); v != 0x20 {
		t.Errorf("plain cache has %#x", v)
	}
	st := sc.Stats()
	if st.WriteHits == 0 {
		t.Error("no write hit recorded")
	}
}

// TestSectorBounds: word bounds on the sector paths.
func TestSectorBounds(t *testing.T) {
	_, _, sc, _ := sectorRig(t)
	if _, err := sc.ReadWord(0, testLineSize/4); err == nil {
		t.Error("read beyond line accepted")
	}
	if err := sc.WriteWord(0, -1, 0); err == nil {
		t.Error("negative word accepted")
	}
	if sc.ID() != 0 {
		t.Errorf("id %d", sc.ID())
	}
}

// TestSectorOnWriteHook: the golden hook fires on all write paths.
func TestSectorOnWriteHook(t *testing.T) {
	mem := memoryNew(t)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	var calls int
	sc := NewSector(0, b, protocols.MOESI(), SectorConfig{
		Sets: 2, Ways: 2, SubSectors: 4,
		OnWrite: func(bus.Addr, int, uint32) { calls++ },
	})
	if err := sc.WriteWord(0, 0, 1); err != nil { // miss (RFO)
		t.Fatal(err)
	}
	if err := sc.WriteWord(0, 1, 2); err != nil { // silent hit
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("hook calls = %d", calls)
	}
}

// memoryNew is a tiny helper for tests needing a bare memory module.
func memoryNew(t *testing.T) *memory.Memory {
	t.Helper()
	return memory.New(testLineSize)
}
