package cache

import (
	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/core"
	"futurebus/internal/memory"
	"futurebus/internal/protocols"
)

// TestBlockRoundTrip: a block write crossing three lines reads back
// intact, word for word.
func TestBlockRoundTrip(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	c := cs[0]
	wpl := testLineSize / 4
	src := make([]uint32, 2*wpl+3) // crosses into a third line
	for i := range src {
		src[i] = uint32(0x1000 + i)
	}
	// Start mid-line so the first line is also partial.
	if err := c.WriteBlock(0x40, wpl-2, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, len(src))
	if err := c.ReadBlock(0x40, wpl-2, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d: %#x != %#x", i, dst[i], src[i])
		}
	}
	// The block really spans multiple lines, each with its own state.
	lines := 0
	for _, a := range []bus.Addr{0x40, 0x41, 0x42, 0x43} {
		if c.Contains(a) {
			lines++
		}
	}
	if lines < 3 {
		t.Errorf("block touched %d lines, want ≥3", lines)
	}
}

// TestBlockPerLineCoherence: each crossed line obeys the protocol
// independently — one line supplied by an intervening owner, the next
// by memory.
func TestBlockPerLineCoherence(t *testing.T) {
	_, mem, cs := rig(t, 2, protocols.MOESI, smallCfg())
	c0, c1 := cs[0], cs[1]
	wpl := testLineSize / 4

	// Line 0x50 is dirty in c1; line 0x51 lives only in memory.
	mustWrite(t, c1, 0x50, wpl-1, 0xAAA)
	line := make([]byte, testLineSize)
	line[0] = 0xBB
	memWrite(mem, 0x51, line)

	dst := make([]uint32, 2)
	if err := c0.ReadBlock(0x50, wpl-1, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0xAAA {
		t.Errorf("word from owner: %#x", dst[0])
	}
	if dst[1] != 0xBB {
		t.Errorf("word from memory: %#x", dst[1])
	}
	if c1.State(0x50) != core.Owned {
		t.Errorf("owner state %s", c1.State(0x50))
	}
}

func memWrite(m *memory.Memory, addr bus.Addr, line []byte) {
	m.WriteLine(addr, line)
}

// TestBlockCrossesRegions: a block spanning a copy-back page and a
// write-through page follows each region's policy per line (§3.4 +
// §5.1 interacting).
func TestBlockCrossesRegions(t *testing.T) {
	_, mem, c := clipperRig(t)
	wpl := testLineSize / 4
	// 0xFF is copy-back, 0x100 is the WT region's first line.
	src := []uint32{0x1, 0x2, 0x3}
	if err := c.WriteBlock(0xFF, wpl-1, src); err != nil {
		t.Fatal(err)
	}
	if c.State(0xFF) != core.Modified {
		t.Errorf("copy-back line state %s", c.State(0xFF))
	}
	if mem.Peek(0xFF)[testLineSize-4] == 0x1 {
		t.Error("copy-back word reached memory")
	}
	if mem.Peek(0x100)[0] != 0x2 || mem.Peek(0x100)[4] != 0x3 {
		t.Error("write-through words did not reach memory")
	}
}

// TestBlockBounds: bad start positions are rejected.
func TestBlockBounds(t *testing.T) {
	_, _, cs := rig(t, 1, protocols.MOESI, smallCfg())
	if err := cs[0].ReadBlock(0, testLineSize/4, make([]uint32, 1)); err == nil {
		t.Error("start word beyond line accepted")
	}
	if err := cs[0].WriteBlock(0, -1, make([]uint32, 1)); err == nil {
		t.Error("negative start accepted")
	}
}

// TestUncachedBlock: the uncached master's block ops cross lines and
// stay coherent with owners.
func TestUncachedBlock(t *testing.T) {
	mem := memory.New(testLineSize)
	b := bus.New(mem, bus.Config{LineSize: testLineSize})
	c := New(0, b, protocols.MOESI(), smallCfg())
	u := NewUncached(1, b, false, nil)
	wpl := testLineSize / 4

	mustWrite(t, c, 0x61, 0, 0x77) // second line dirty in the cache
	src := make([]uint32, wpl)
	for i := range src {
		src[i] = uint32(i + 1)
	}
	if err := u.WriteBlock(0x60, wpl/2, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, wpl)
	if err := u.ReadBlock(0x60, wpl/2, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d: %#x != %#x", i, dst[i], src[i])
		}
	}
	// The owner captured the words that landed in its line.
	if v := mustRead(t, c, 0x61, 0); v != src[wpl/2] {
		t.Errorf("owner word %#x, want %#x", v, src[wpl/2])
	}
	if err := u.ReadBlock(0x60, wpl, dst); err == nil {
		t.Error("uncached bad start accepted")
	}
	if err := u.WriteBlock(0x60, -1, src); err == nil {
		t.Error("uncached negative start accepted")
	}
}
