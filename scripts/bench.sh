#!/usr/bin/env sh
# Run the repository's benchmark suite and record per-benchmark ns/op
# as a dated JSON document (BENCH_<YYYY-MM-DD>.json by default), so
# performance regressions between PRs can be diffed with jq instead of
# eyeballing `go test -bench` output.
#
# Usage:
#   scripts/bench.sh                # full suite -> BENCH_<date>.json
#   scripts/bench.sh -o out.json    # explicit output file
#   scripts/bench.sh -b 'Cache|Bus' # only benchmarks matching the regex
#   scripts/bench.sh -t 10x         # -benchtime per benchmark (default 5x)
#   scripts/bench.sh -c 5           # -count repetitions; keeps the best
#                                   # (minimum-ns/op) run per benchmark,
#                                   # the noise-robust choice for gating
#   scripts/bench.sh -L ledger.jsonl# append the run to this run ledger
#                                   # (default BENCH_LEDGER.jsonl; 'none'
#                                   # disables) — see cmd/fbtrend
#
# The JSON is an object keyed by benchmark name (GOMAXPROCS suffix
# stripped): {"BenchmarkCacheReadHit": {"ns_per_op": 123.4, "runs": 5}},
# plus a "_meta" entry recording the machine and toolchain the numbers
# were taken on (git SHA, go version, GOMAXPROCS, CPU count, UTC date)
# so a diff across baselines can tell a code regression from a
# hardware change.
set -eu

cd "$(dirname "$0")/.."

out=""
bench='.'
benchtime='5x'
count=1
ledger='BENCH_LEDGER.jsonl'
while getopts 'o:b:t:c:L:' opt; do
	case "$opt" in
	o) out=$OPTARG ;;
	b) bench=$OPTARG ;;
	t) benchtime=$OPTARG ;;
	c) count=$OPTARG ;;
	L) ledger=$OPTARG ;;
	*) echo "usage: scripts/bench.sh [-o out.json] [-b regex] [-t benchtime] [-c count] [-L ledger|none]" >&2; exit 2 ;;
	esac
done
[ -n "$out" ] || out="BENCH_$(date +%Y-%m-%d).json"

git_sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
go_ver=$(go version | awk '{print $3}')
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
gomaxprocs=${GOMAXPROCS:-$cpus} # go's default GOMAXPROCS is the CPU count
date_utc=$(date -u +%Y-%m-%dT%H:%M:%SZ)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (-bench '$bench' -benchtime $benchtime -count $count)..." >&2
go test -run '^$' -bench "$bench" -benchtime "$benchtime" -count "$count" ./... | tee "$raw" >&2

# `go test -bench` lines look like:
#   BenchmarkCacheReadHit-8   5   123.4 ns/op
# possibly followed by custom metric pairs reported via b.ReportMetric:
#   BenchmarkShardedFabric/shards4-8   5   1234 ns/op   56.7 refs/simms
# Normalise them into a JSON object, keeping every metric (the custom
# ones carry e.g. the shard-scaling points); awk keeps this
# dependency-free. Units are sanitised into JSON keys ("ns/op" ->
# "ns_per_op", "refs/simms" -> "refs_per_simms").
awk -v sha="$git_sha" -v gover="$go_ver" -v gmp="$gomaxprocs" \
	-v cpus="$cpus" -v dateutc="$date_utc" '
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	entry = "{\"runs\": " $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		entry = entry ", \"" unit "\": " $i
	}
	entry = entry "}"
	# With -count > 1 a benchmark appears once per repetition; keep the
	# minimum-ns/op run (least scheduler/GC interference) for the record.
	if (!(name in best)) order[++m] = name
	if (!(name in best) || $3 + 0 < bestns[name]) {
		best[name] = entry
		bestns[name] = $3 + 0
	}
}
END {
	printf "{\n"
	printf "  \"_meta\": {\"git_sha\": \"%s\", \"go\": \"%s\", ", sha, gover
	printf "\"gomaxprocs\": %d, \"cpus\": %d, \"date_utc\": \"%s\"}", gmp, cpus, dateutc
	for (i = 1; i <= m; i++) {
		n = order[i]
		printf ",\n  \"%s\": %s", n, best[n]
	}
	printf "\n}\n"
}
' "$raw" >"$out"

count=$(grep -c 'ns_per_op' "$out" || true)
echo "wrote $count benchmark results to $out" >&2

# Append the run to the longitudinal run ledger so fbtrend can judge
# future runs against a rolling baseline instead of one fixed file.
if [ "$ledger" != "none" ]; then
	go run ./cmd/fbtrend ingest -ledger "$ledger" "$out" >&2
fi
