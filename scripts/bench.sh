#!/usr/bin/env sh
# Run the repository's benchmark suite and record per-benchmark ns/op
# as a dated JSON document (BENCH_<YYYY-MM-DD>.json by default), so
# performance regressions between PRs can be diffed with jq instead of
# eyeballing `go test -bench` output.
#
# Usage:
#   scripts/bench.sh                # full suite -> BENCH_<date>.json
#   scripts/bench.sh -o out.json    # explicit output file
#   scripts/bench.sh -b 'Cache|Bus' # only benchmarks matching the regex
#   scripts/bench.sh -t 10x         # -benchtime per benchmark (default 5x)
#
# The JSON is an object keyed by benchmark name (GOMAXPROCS suffix
# stripped): {"BenchmarkCacheReadHit": {"ns_per_op": 123.4, "runs": 5}}.
set -eu

cd "$(dirname "$0")/.."

out=""
bench='.'
benchtime='5x'
while getopts 'o:b:t:' opt; do
	case "$opt" in
	o) out=$OPTARG ;;
	b) bench=$OPTARG ;;
	t) benchtime=$OPTARG ;;
	*) echo "usage: scripts/bench.sh [-o out.json] [-b regex] [-t benchtime]" >&2; exit 2 ;;
	esac
done
[ -n "$out" ] || out="BENCH_$(date +%Y-%m-%d).json"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (-bench '$bench' -benchtime $benchtime)..." >&2
go test -run '^$' -bench "$bench" -benchtime "$benchtime" ./... | tee "$raw" >&2

# `go test -bench` lines look like:
#   BenchmarkCacheReadHit-8   5   123.4 ns/op
# Normalise them into a JSON object; awk keeps this dependency-free.
awk '
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	runs = $2
	ns = $3
	if (n++) printf ",\n"
	printf "  \"%s\": {\"ns_per_op\": %s, \"runs\": %s}", name, ns, runs
}
BEGIN { printf "{\n" }
END   { printf "\n}\n" }
' "$raw" >"$out"

count=$(grep -c 'ns_per_op' "$out" || true)
echo "wrote $count benchmark results to $out" >&2
