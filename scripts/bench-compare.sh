#!/usr/bin/env sh
# Compare a fresh benchmark run against the most recent committed
# BENCH_<date>.json baseline and warn (exit 0 either way — timing on
# shared CI hardware is advisory) about per-benchmark ns/op regressions
# past a threshold. Also reports the observability recording-overhead
# ratio (BenchmarkObsRecordingOverhead fbt vs off), the runtime
# verification ratio (BenchmarkWatchSinkOverhead record+watch vs
# record, gated at 10%), and the saturation-telemetry ratio
# (BenchmarkPerfSinkOverhead record+perf vs record, gated at 10%).
# One check is NON-advisory: the atomic-mode bus fast path
# (BenchmarkBusLockedRMW — grant → address → data → release through the
# arbiter with no split machinery) must stay within 5% of the committed
# baseline, because the tenure/discipline indirection is supposed to be
# free when unused; a breach exits 1. The gated statistic is the per-op
# allocation footprint (B/op, allocs/op): it is deterministic, so 5%
# means a real change, whereas wall-clock ns/op on shared hardware has
# >5% irreducible run-to-run noise — the ns/op delta is printed on the
# same line but stays advisory.
# The "_meta" entry bench.sh embeds (host/toolchain provenance) is not
# a benchmark and is skipped.
#
# With -l the new run is additionally judged against a run ledger's
# rolling baseline (`fbtrend gate`): trailing-window median + MAD over
# the last 5 ledgered runs, which catches slow drift a single-baseline
# diff cannot. The ledger gate's verdict decides the exit code (exit 1
# on regression).
#
# Usage:
#   scripts/bench-compare.sh                 # run suite, compare vs latest BENCH_*.json
#   scripts/bench-compare.sh -n new.json     # compare an existing run instead of re-running
#   scripts/bench-compare.sh -o old.json     # explicit baseline
#   scripts/bench-compare.sh -p 25           # regression threshold in percent (default 10)
#   scripts/bench-compare.sh -t 10x          # -benchtime when re-running (default 5x)
#   scripts/bench-compare.sh -l ledger.jsonl # also gate vs this ledger's rolling baseline
set -eu

cd "$(dirname "$0")/.."

old=""
new=""
pct=10
benchtime='5x'
ledger=""
while getopts 'o:n:p:t:l:' opt; do
	case "$opt" in
	o) old=$OPTARG ;;
	n) new=$OPTARG ;;
	p) pct=$OPTARG ;;
	t) benchtime=$OPTARG ;;
	l) ledger=$OPTARG ;;
	*) echo "usage: scripts/bench-compare.sh [-o old.json] [-n new.json] [-p pct] [-t benchtime] [-l ledger.jsonl]" >&2; exit 2 ;;
	esac
done

if [ -z "$old" ]; then
	old=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
	[ -n "$old" ] || { echo "bench-compare: no BENCH_*.json baseline committed" >&2; exit 2; }
fi

cleanup=""
if [ -z "$new" ]; then
	new=$(mktemp)
	cleanup=$new
	trap 'rm -f "$cleanup"' EXIT
	# A compare run is a probe, not a record: disable bench.sh's ledger
	# append so throwaway runs never pollute the rolling baseline.
	scripts/bench.sh -o "$new" -t "$benchtime" -L none
fi

echo "comparing $new against baseline $old (warn past ${pct}% ns/op growth)"

# Both files are flat {"name": {"ns_per_op": N, ...}} objects; a
# line-oriented awk join keeps this dependency-free.
awk -v pct="$pct" '
function val(line) {
	if (match(line, /"ns_per_op": *[0-9.eE+-]+/) == 0) return -1
	v = substr(line, RSTART, RLENGTH)
	sub(/.*: */, "", v)
	return v + 0
}
function name(line) {
	if (match(line, /"Benchmark[^"]*"/) == 0) return ""
	return substr(line, RSTART + 1, RLENGTH - 2)
}
function simms(line) {
	if (match(line, /"refs_per_simms": *[0-9.eE+-]+/) == 0) return -1
	v = substr(line, RSTART, RLENGTH)
	sub(/.*: */, "", v)
	return v + 0
}
function bval(line) {
	if (match(line, /"B_per_op": *[0-9.eE+-]+/) == 0) return -1
	v = substr(line, RSTART, RLENGTH)
	sub(/.*: */, "", v)
	return v + 0
}
function aval(line) {
	if (match(line, /"allocs_per_op": *[0-9.eE+-]+/) == 0) return -1
	v = substr(line, RSTART, RLENGTH)
	sub(/.*: */, "", v)
	return v + 0
}
# The _meta provenance entry is not a benchmark; drop it before the
# join (name() would skip it anyway, but be explicit).
/"_meta"/ { next }
FNR == NR {
	if ((n = name($0)) != "") {
		base[n] = val($0); baseb[n] = bval($0); basea[n] = aval($0)
	}
	next
}
{
	n = name($0)
	if (n != "") {
		thru[n] = simms($0); cur[n] = val($0)
		curb[n] = bval($0); cura[n] = aval($0)
	}
	if (n == "" || !(n in base)) next
	nv = val($0); ov = base[n]
	seen[n] = 1
	if (ov > 0 && nv > ov * (1 + pct / 100)) {
		warned++
		printf "WARN  %-45s %12.0f -> %12.0f ns/op (%+.1f%%)\n", n, ov, nv, (nv / ov - 1) * 100
	}
}
END {
	for (n in base) if (!(n in seen)) missing++
	off = cur["BenchmarkObsRecordingOverhead/off"]
	fbt = cur["BenchmarkObsRecordingOverhead/fbt"]
	if (off > 0 && fbt > 0) {
		printf "recording overhead: fbt/off = %.2fx (+%.1f%% wall-clock)\n", fbt / off, (fbt / off - 1) * 100
		if (fbt > off * 1.05)
			printf "WARN  .fbt recording costs more than 5%% over an unobserved run\n"
	}
	rec = cur["BenchmarkWatchSinkOverhead/record"]
	mon = cur["BenchmarkWatchSinkOverhead/record+watch"]
	if (rec > 0 && mon > 0) {
		printf "watch overhead: record+watch/record = %.2fx (%+.1f%% wall-clock)\n", mon / rec, (mon / rec - 1) * 100
		if (mon > rec * 1.10)
			printf "WARN  live invariant monitoring costs more than 10%% over a record-only run\n"
	}
	prec = cur["BenchmarkPerfSinkOverhead/record"]
	perf = cur["BenchmarkPerfSinkOverhead/record+perf"]
	if (prec > 0 && perf > 0) {
		printf "perf overhead: record+perf/record = %.2fx (%+.1f%% wall-clock)\n", perf / prec, (perf / prec - 1) * 100
		if (perf > prec * 1.10)
			printf "WARN  saturation telemetry costs more than 10%% over a record-only run\n"
	}
	s1 = thru["BenchmarkShardedFabric/shards1"]
	s8 = thru["BenchmarkShardedFabric/shards8"]
	if (s1 > 0 && s8 > 0) {
		printf "shard scaling: 8-shard/1-shard simulated throughput = %.2fx\n", s8 / s1
		if (s8 < s1 * 2)
			printf "WARN  interleaved backplane no longer scales (8 shards < 2x one bus)\n"
	}
	# Non-advisory gate: the atomic-mode fast path must not pay for the
	# pluggable tenure/discipline machinery it does not use. Gated on
	# the deterministic allocation footprint; ns/op shown as advisory.
	fp = "BenchmarkBusLockedRMW"
	if (fp in base && fp in cur) {
		printf "atomic fast path (%s): %.0f -> %.0f ns/op (%+.1f%%, advisory); ", \
			fp, base[fp], cur[fp], (cur[fp] / base[fp] - 1) * 100
		printf "%.0f -> %.0f B/op, %.0f -> %.0f allocs/op (gate 5%%)\n", \
			baseb[fp], curb[fp], basea[fp], cura[fp]
		if (curb[fp] > baseb[fp] * 1.05 || cura[fp] > basea[fp] * 1.05 + 0.5) {
			printf "FAIL  atomic fast path allocation footprint regressed past 5%% vs the committed baseline\n"
			fail = 1
		}
	}
	if (missing) printf "note: %d baseline benchmark(s) absent from the new run\n", missing
	if (warned) printf "%d benchmark(s) regressed past %s%% (advisory: shared CI hardware)\n", warned, pct
	else printf "no ns/op regressions past %s%%\n", pct
	exit fail
}
' "$old" "$new"

# Rolling-baseline gate: judge the new run against the trailing-window
# median of the ledgered history (see cmd/fbtrend). Exits 1 on a
# regression verdict, which set -e propagates.
if [ -n "$ledger" ]; then
	echo "gating $new against the rolling baseline in $ledger"
	go run ./cmd/fbtrend gate -ledger "$ledger" -candidate "$new"
fi
