// Command fbtrend is the longitudinal regression observatory: it folds
// every report format the tree emits into one append-only JSONL run
// ledger, plots per-metric trends across runs, and gates CI on the
// rolling baseline of the last N runs instead of one brittle baseline
// file.
//
// Usage:
//
//	fbtrend ingest [-ledger file] report.json...
//	fbtrend list [-ledger file] [-kind k] [-label l]
//	fbtrend trend [-ledger file] [-kind k] [-label l] [-window N] [-k mult] [-rel frac] metric
//	fbtrend gate [-ledger file] [-kind k] [-label l] [-window N] [-k mult] [-rel frac] [-min-runs N] [-candidate report.json] [-json]
//	fbtrend report [-ledger file] [-kind k] [-label l] -html out.html
//
// gate exits 1 when the candidate run (the newest ledger record, or
// -candidate's report) regresses any non-advisory metric against the
// rolling median+MAD baseline of the trailing window; 2 on usage or IO
// errors. Regression semantics live in internal/obs/regress, shared
// with fbcausal diff, fblens diff and fbperf compare.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"futurebus/internal/obs/ledger"
	"futurebus/internal/obs/regress"
)

// DefaultLedger is the conventional ledger path scripts/bench.sh
// appends to at the repo root.
const DefaultLedger = "BENCH_LEDGER.jsonl"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ingest":
		cmdIngest(os.Args[2:])
	case "list":
		cmdList(os.Args[2:])
	case "trend":
		cmdTrend(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	case "report":
		cmdReport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fbtrend: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `fbtrend — cross-run regression observatory over a JSONL run ledger

  fbtrend ingest [-ledger file] report.json...
      fold reports (BENCH_*.json, fbperf run, fbcausal analyze -json,
      fblens analyze -json, fbsweep -json) into the ledger

  fbtrend list [-ledger file] [-kind k] [-label l]
      one line per ledger record: kind, label, git SHA, date, metrics

  fbtrend trend [-ledger file] [-kind k] [-label l] [-window N] [-k mult] [-rel frac] metric
      print the metric's run series with slope and changepoints

  fbtrend gate [-ledger file] [-kind k] [-label l] [-window N] [-k mult]
               [-rel frac] [-min-runs N] [-candidate report.json] [-json]
      judge the newest run (or -candidate) against the rolling
      median+MAD baseline of the trailing window; exit 1 on regression

  fbtrend report [-ledger file] [-kind k] [-label l] -html out.html
      self-contained HTML sparkline dashboard per metric family
`)
	os.Exit(2)
}

// ledgerFlags are the flags every subcommand shares.
type ledgerFlags struct {
	path  *string
	kind  *string
	label *string
}

func addLedgerFlags(fs *flag.FlagSet) ledgerFlags {
	return ledgerFlags{
		path:  fs.String("ledger", DefaultLedger, "ledger file (JSON Lines)"),
		kind:  fs.String("kind", "", "filter records by source kind (bench, fbperf, fbcausal, fblens, fbsweep)"),
		label: fs.String("label", "", "filter records by label (battery tuple, fingerprint, report ID)"),
	}
}

// gateFlags are the rolling-baseline knobs gate and trend share.
type gateFlags struct {
	window  *int
	k       *float64
	rel     *float64
	minRuns *int
}

func addGateFlags(fs *flag.FlagSet) gateFlags {
	return gateFlags{
		window:  fs.Int("window", regress.DefaultWindow, "trailing runs in the rolling baseline"),
		k:       fs.Float64("k", regress.DefaultK, "MAD multiplier of the noise envelope"),
		rel:     fs.Float64("rel", 0.10, "relative regression floor (fraction)"),
		minRuns: fs.Int("min-runs", 2, "minimum baseline runs before a metric is judged"),
	}
}

func (f ledgerFlags) read() []ledger.Record {
	recs, dropped, err := ledger.Read(*f.path)
	fail(err)
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "fbtrend: %s: dropped %d truncated trailing record (interrupted append)\n", *f.path, dropped)
	}
	return ledger.Filter(recs, *f.kind, *f.label)
}

func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	lf := addLedgerFlags(fs)
	fail(fs.Parse(args))
	if fs.NArg() == 0 {
		usage()
	}
	total := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		fail(err)
		recs, err := ledger.Ingest(data, path)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		fail(ledger.Append(*lf.path, recs...))
		total += len(recs)
	}
	fmt.Printf("fbtrend: appended %d record(s) to %s\n", total, *lf.path)
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	lf := addLedgerFlags(fs)
	fail(fs.Parse(args))
	if fs.NArg() != 0 {
		usage()
	}
	recs := lf.read()
	for i, r := range recs {
		label := r.Label
		if label == "" {
			label = "-"
		}
		fmt.Printf("%4d  %-9s %-28s %-9s %-20s %d metrics\n",
			i, r.Kind, label, orDash(r.Meta.GitSHA), orDash(r.Meta.DateUTC), len(r.Metrics))
	}
	if len(recs) == 0 {
		fmt.Println("fbtrend: no matching records")
	}
}

func cmdTrend(args []string) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	lf := addLedgerFlags(fs)
	gf := addGateFlags(fs)
	fail(fs.Parse(args))
	if fs.NArg() != 1 {
		usage()
	}
	key := fs.Arg(0)
	recs := lf.read()
	series := ledger.Series(recs, key)
	if len(series) == 0 {
		fail(fmt.Errorf("metric %q not found in any matching record (try fbtrend list)", key))
	}
	th := regress.Thresholds{Rel: *gf.rel, Abs: regress.AbsFloor(key)}
	steps := regress.Changepoints(series, *gf.window, *gf.k, th)
	stepSet := make(map[int]bool, len(steps))
	for _, s := range steps {
		stepSet[s] = true
	}
	fmt.Printf("%s  (%d runs", key, len(series))
	if regress.Advisory(key) {
		fmt.Printf(", advisory")
	}
	if regress.BetterUp(key) {
		fmt.Printf(", better-up")
	}
	fmt.Printf(")\n")
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	idx := 0 // index within the metric's own series
	for _, r := range recs {
		v, ok := r.Metrics[key]
		if !ok {
			continue
		}
		mark := ""
		if stepSet[idx] {
			mark = "  << step"
		}
		fmt.Printf("  %4d %-9s %14.3f  %s%s\n", idx, orDash(r.Meta.GitSHA), v, sparkbar(v, lo, hi), mark)
		idx++
	}
	fmt.Printf("slope: %+.4g per run over %d runs; %d changepoint(s)\n",
		regress.Slope(series), len(series), len(steps))
}

// sparkbar renders v's position in [lo,hi] as a crude text bar, enough
// to eyeball a trend in a terminal.
func sparkbar(v, lo, hi float64) string {
	const width = 24
	n := width / 2
	if hi > lo {
		n = int((v - lo) / (hi - lo) * width)
	}
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("▪", n) + strings.Repeat("·", width-n)
}

func cmdGate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	lf := addLedgerFlags(fs)
	gf := addGateFlags(fs)
	candidate := fs.String("candidate", "", "judge this report instead of the newest ledger record (not appended)")
	asJSON := fs.Bool("json", false, "emit the gate report as JSON")
	fail(fs.Parse(args))
	if fs.NArg() != 0 {
		usage()
	}
	history := lf.read()
	var cand ledger.Record
	if *candidate != "" {
		data, err := os.ReadFile(*candidate)
		fail(err)
		recs, err := ledger.Ingest(data, *candidate)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *candidate, err))
		}
		if len(recs) != 1 {
			fail(fmt.Errorf("%s: yields %d records; gate one run at a time", *candidate, len(recs)))
		}
		cand = recs[0]
		// Only prior runs of the same series form the baseline.
		history = ledger.Filter(history, cand.Kind, cand.Label)
	} else {
		if len(history) == 0 {
			fail(fmt.Errorf("%s: no matching records to gate (run fbtrend ingest first)", *lf.path))
		}
		cand = history[len(history)-1]
		history = ledger.Filter(history[:len(history)-1], cand.Kind, cand.Label)
	}
	rep := ledger.Gate(history, cand, ledger.GateOpts{
		Window: *gf.window, K: *gf.k, Rel: *gf.rel, MinRuns: *gf.minRuns,
	})
	if *asJSON {
		writeJSON(os.Stdout, rep)
	} else {
		renderGate(os.Stdout, rep)
	}
	if rep.Verdict == "regressed" {
		os.Exit(1)
	}
}

func renderGate(w io.Writer, rep ledger.GateReport) {
	fmt.Fprintf(w, "gate: kind=%s label=%s baseline=%d run(s)\n",
		orDash(rep.Kind), orDash(rep.Label), rep.Runs)
	fmt.Fprintf(w, "  %-42s %14s %14s %8s\n", "metric", "median", "value", "verdict")
	for _, row := range rep.Rows {
		verdict := row.Direction
		switch {
		case row.Skipped:
			verdict = "(no baseline)"
		case row.Advisory:
			verdict = "(advisory)"
		case row.Direction == "regressed":
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-42s %14.3f %14.3f  %s\n", row.Key, row.Baseline.Median, row.Value, verdict)
	}
	fmt.Fprintf(w, "verdict: %s (%d regressed, %d improved)\n",
		rep.Verdict, rep.Regressions, rep.Improvements)
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	lf := addLedgerFlags(fs)
	htmlOut := fs.String("html", "", "output HTML file (required)")
	fail(fs.Parse(args))
	if fs.NArg() != 0 || *htmlOut == "" {
		usage()
	}
	recs := lf.read()
	if len(recs) == 0 {
		fail(fmt.Errorf("%s: no matching records", *lf.path))
	}
	f, err := os.Create(*htmlOut)
	fail(err)
	fail(renderHTML(f, recs))
	fail(f.Close())
	fmt.Printf("fbtrend: wrote %s (%d records)\n", *htmlOut, len(recs))
}

// seriesKeys returns every metric key of the records sorted by family
// prefix then name, so the dashboard groups related sparklines.
func seriesKeys(recs []ledger.Record) []string {
	keys := ledger.Keys(recs)
	sort.SliceStable(keys, func(i, j int) bool {
		fi, fj := family(keys[i]), family(keys[j])
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	return keys
}

// family is the metric key's first dot segment: "perf", "host",
// "bench", "causal", "lens", "sweep", "queue".
func family(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fail(enc.Encode(v))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbtrend:", err)
		os.Exit(2)
	}
}
