package main

import (
	"encoding/json"
	"fmt"
	"io"

	"futurebus/internal/obs/coherence"
	"futurebus/internal/obs/ledger"
	"futurebus/internal/obs/regress"
)

// htmlSeries is one metric's dashboard payload: the run series plus
// the analysis the page annotates it with.
type htmlSeries struct {
	Key    string    `json:"key"`
	Family string    `json:"family"`
	Values []float64 `json:"values"`
	// Runs holds the git SHA (or "") of each value's record.
	Runs     []string `json:"runs"`
	Slope    float64  `json:"slope"`
	Steps    []int    `json:"steps,omitempty"`
	Advisory bool     `json:"advisory,omitempty"`
	BetterUp bool     `json:"better_up,omitempty"`
}

// htmlDoc is the embedded dashboard payload.
type htmlDoc struct {
	Records int          `json:"records"`
	Series  []htmlSeries `json:"series"`
}

// renderHTML writes the self-contained sparkline dashboard: one row
// per metric, grouped by family, changepoints marked. Data is embedded
// with the same script-payload escaping as the fblens report and the
// page only builds DOM via textContent — metric keys and labels come
// from ingested files, which may be hostile.
func renderHTML(w io.Writer, recs []ledger.Record) error {
	doc := htmlDoc{Records: len(recs)}
	for _, key := range seriesKeys(recs) {
		s := htmlSeries{
			Key:      key,
			Family:   family(key),
			Advisory: regress.Advisory(key),
			BetterUp: regress.BetterUp(key),
		}
		for _, r := range recs {
			if v, ok := r.Metrics[key]; ok {
				s.Values = append(s.Values, v)
				s.Runs = append(s.Runs, r.Meta.GitSHA)
			}
		}
		th := regress.Thresholds{Rel: 0.10, Abs: regress.AbsFloor(key)}
		s.Slope = regress.Slope(s.Values)
		s.Steps = regress.Changepoints(s.Values, regress.DefaultWindow, regress.DefaultK, th)
		doc.Series = append(doc.Series, s)
	}
	payload, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, htmlShell, coherence.EscapeScriptPayload(payload))
	return err
}

const htmlShell = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>futurebus trend report</title>
<style>
 body { font: 14px/1.4 system-ui, sans-serif; margin: 2em auto; max-width: 72em; color: #222; }
 h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
 table { border-collapse: collapse; }
 td, th { padding: .2em .7em; text-align: left; font-variant-numeric: tabular-nums; }
 tr:nth-child(even) { background: #f7f7f7; }
 .key { font-family: ui-monospace, monospace; font-size: 12px; }
 .num { text-align: right; }
 .muted { color: #777; }
 .stepmark { color: #d33; font-weight: bold; }
 svg.spark { vertical-align: middle; }
 .spark polyline { fill: none; stroke: #27b; stroke-width: 1.2; }
 .spark circle.step { fill: #d33; }
 .spark circle.last { fill: #27b; }
</style>
</head>
<body>
<h1>futurebus trend report</h1>
<div id="root"></div>
<script id="data" type="application/json">%s</script>
<script>
const D = JSON.parse(document.getElementById('data').textContent);
const root = document.getElementById('root');
const SVGNS = 'http://www.w3.org/2000/svg';
function el(tag, cls, text) {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
}
function spark(s) {
  const W = 180, H = 28, P = 2;
  const svg = document.createElementNS(SVGNS, 'svg');
  svg.setAttribute('class', 'spark');
  svg.setAttribute('width', W); svg.setAttribute('height', H);
  const v = s.values;
  if (!v.length) return svg;
  let lo = Math.min(...v), hi = Math.max(...v);
  if (hi === lo) { hi += 1; lo -= 1; }
  const x = i => v.length < 2 ? W / 2 : P + (W - 2*P) * i / (v.length - 1);
  const y = val => H - P - (H - 2*P) * (val - lo) / (hi - lo);
  const line = document.createElementNS(SVGNS, 'polyline');
  line.setAttribute('points', v.map((val, i) => x(i) + ',' + y(val)).join(' '));
  svg.appendChild(line);
  for (const i of s.steps || []) {
    const c = document.createElementNS(SVGNS, 'circle');
    c.setAttribute('class', 'step');
    c.setAttribute('cx', x(i)); c.setAttribute('cy', y(v[i])); c.setAttribute('r', 2.5);
    const t = document.createElementNS(SVGNS, 'title');
    t.textContent = 'step at run ' + i + (s.runs[i] ? ' (' + s.runs[i] + ')' : '');
    c.appendChild(t);
    svg.appendChild(c);
  }
  const last = document.createElementNS(SVGNS, 'circle');
  last.setAttribute('class', 'last');
  last.setAttribute('cx', x(v.length - 1)); last.setAttribute('cy', y(v[v.length - 1]));
  last.setAttribute('r', 2);
  svg.appendChild(last);
  return svg;
}
root.appendChild(el('p', 'muted', D.records + ' ledger records, ' + D.series.length + ' metrics'));
const families = [...new Set(D.series.map(s => s.family))];
for (const fam of families) {
  root.appendChild(el('h2', null, fam));
  const tbl = el('table');
  const head = el('tr');
  for (const h of ['metric', 'runs', 'last', 'slope/run', 'trend', 'steps']) head.appendChild(el('th', null, h));
  tbl.appendChild(head);
  for (const s of D.series.filter(s => s.family === fam)) {
    const tr = el('tr');
    let key = s.key;
    if (s.advisory) key += '  (advisory)';
    if (s.better_up) key += '  (better-up)';
    tr.appendChild(el('td', 'key', key));
    tr.appendChild(el('td', 'num', String(s.values.length)));
    tr.appendChild(el('td', 'num', s.values.length ? s.values[s.values.length - 1].toPrecision(6) : '-'));
    tr.appendChild(el('td', 'num', s.slope.toPrecision(3)));
    const cell = el('td');
    cell.appendChild(spark(s));
    tr.appendChild(cell);
    tr.appendChild(el('td', (s.steps || []).length ? 'stepmark' : 'muted', String((s.steps || []).length)));
    tbl.appendChild(tr);
  }
  root.appendChild(tbl);
}
</script>
</body>
</html>
`
