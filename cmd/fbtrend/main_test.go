package main

import (
	"strings"
	"testing"

	"futurebus/internal/obs/ledger"
)

func testRecords(n int) []ledger.Record {
	recs := make([]ledger.Record, n)
	for i := range recs {
		recs[i] = ledger.Record{
			Schema: ledger.Schema,
			Kind:   ledger.KindPerf,
			Label:  "fixture/det/p4",
			Meta:   ledger.Meta{GitSHA: "abc1234"},
			Metrics: map[string]float64{
				"perf.arb_wait_ns.p99":     42000 + float64(i),
				"host.alloc_bytes_per_ref": 128,
				"host.wall_ns":             1e9,
			},
		}
	}
	return recs
}

func TestSeriesKeysGroupedByFamily(t *testing.T) {
	recs := []ledger.Record{{
		Schema: ledger.Schema,
		Kind:   ledger.KindPerf,
		Metrics: map[string]float64{
			"queue.peak_depth":         3,
			"host.wall_ns":             1,
			"perf.arb_wait_ns.p99":     2,
			"perf.arb_wait_ns.p50":     1,
			"host.alloc_bytes_per_ref": 8,
		},
	}}
	got := seriesKeys(recs)
	want := []string{
		"host.alloc_bytes_per_ref", "host.wall_ns",
		"perf.arb_wait_ns.p50", "perf.arb_wait_ns.p99",
		"queue.peak_depth",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRenderGateMarksRegressions(t *testing.T) {
	hist := testRecords(5)
	cand := testRecords(1)[0]
	cand.Metrics["perf.arb_wait_ns.p99"] = 42000 * 1.5
	rep := ledger.Gate(hist, cand, ledger.GateOpts{})
	if rep.Verdict != "regressed" {
		t.Fatalf("verdict = %q, want regressed", rep.Verdict)
	}
	var sb strings.Builder
	renderGate(&sb, rep)
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("render lacks REGRESSED marker:\n%s", out)
	}
	if !strings.Contains(out, "(advisory)") {
		t.Errorf("render lacks advisory marker for host.wall_ns:\n%s", out)
	}
	if !strings.Contains(out, "verdict: regressed") {
		t.Errorf("render lacks final verdict line:\n%s", out)
	}
}

// TestRenderHTMLEscapesHostileKeys: metric keys come from ingested
// files; a </script> smuggled into one must not escape the data
// element.
func TestRenderHTMLEscapesHostileKeys(t *testing.T) {
	recs := testRecords(3)
	recs[0].Metrics[`</script><script>alert(1)</script>`] = 1
	var sb strings.Builder
	if err := renderHTML(&sb, recs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "<script>alert(1)") {
		t.Error("hostile key survived unescaped into the HTML")
	}
	if !strings.Contains(out, `</script>`) {
		t.Error("expected \\u003c-escaped payload in the data element")
	}
	// Self-contained: no external asset loads (the SVG namespace URL is
	// an identifier, not a fetch).
	if strings.Contains(out, "src=") || strings.Contains(out, "fetch(") {
		t.Error("report references external assets")
	}
	if !strings.Contains(out, "spark") {
		t.Error("dashboard script missing sparkline renderer")
	}
}

func TestSparkbarBounds(t *testing.T) {
	if got := sparkbar(5, 0, 10); len([]rune(got)) != 24 {
		t.Errorf("sparkbar width = %d runes, want 24", len([]rune(got)))
	}
	if got := sparkbar(7, 7, 7); len([]rune(got)) != 24 {
		t.Errorf("flat-series sparkbar width = %d runes, want 24", len([]rune(got)))
	}
}

func TestFamily(t *testing.T) {
	for key, want := range map[string]string{
		"perf.arb_wait_ns.p99": "perf",
		"host.wall_ns":         "host",
		"nodots":               "nodots",
	} {
		if got := family(key); got != want {
			t.Errorf("family(%q) = %q, want %q", key, got, want)
		}
	}
}
