// Command fbsim runs one Futurebus multiprocessor simulation and prints
// its metrics: protocol mix, processor count, workload model, engine.
//
// Usage:
//
//	fbsim -protocols moesi,moesi,dragon,uncached -refs 20000 \
//	      -pshared 0.2 -pwrite 0.3 -workload ab -engine det
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"futurebus/internal/bus"
	"futurebus/internal/faults"
	"futurebus/internal/obs"
	"futurebus/internal/obs/ledger"
	"futurebus/internal/obs/obshttp"
	"futurebus/internal/obs/perf"
	"futurebus/internal/obs/watch"
	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

func main() {
	protos := flag.String("protocols", "moesi,moesi,moesi,moesi",
		"comma-separated board protocols (registry names, 'uncached', 'uncached-broadcast')")
	refs := flag.Int("refs", 20000, "references per board")
	pshared := flag.Float64("pshared", 0.2, "probability a reference touches shared data (ab workload)")
	pwrite := flag.Float64("pwrite", 0.3, "probability a reference is a write")
	wl := flag.String("workload", "ab", "workload: ab, migratory, producer-consumer, read-mostly, ping-pong, zipf")
	engine := flag.String("engine", "det", "engine: det (deterministic) or conc (goroutine per board)")
	shards := flag.Int("shards", 1, "fabric shards: 1 = single Futurebus, N>1 = address-interleaved multi-bus backplane")
	busMode := flag.String("bus", "", "bus tenure policy: atomic (one grant covers the whole transaction; default) or split (address and data phases are separate grants)")
	discipline := flag.String("discipline", "", "arbitration discipline: fcfs (default), rr, priority or bounded")
	pendingTable := flag.Int("pending-table", 0, "split-mode pending-transaction table size per shard (0 = default)")
	lineSize := flag.Int("line", 32, "system line size in bytes")
	sets := flag.Int("sets", 64, "cache sets")
	ways := flag.Int("ways", 2, "cache ways")
	seed := flag.Uint64("seed", 1986, "workload seed")
	checkConsistency := flag.Bool("check", true, "run the consistency checker at the end")
	paranoid := flag.Bool("paranoid", false, "validate every snoop response against the class at runtime")
	transitions := flag.Bool("transitions", false, "print the aggregated MOESI state-transition table")
	watchFlag := flag.Bool("watch", false, "run the live invariant monitor; print violations and exit 1 if any")
	watchLine := flag.Uint64("watch-line", 0, "print a per-board state timeline for this line address (0 = off)")
	record := flag.String("record", "", "record each board's reference stream to <prefix>.<board>.trace")
	replay := flag.String("replay", "", "replay reference streams from <prefix>.<board>.trace (overrides -workload)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
	jsonlOut := flag.String("jsonl-out", "", "write the raw event stream as JSON Lines")
	recordOut := flag.String("record-out", "", "write the full event stream as a compact binary .fbt trace (analyze offline with fbcausal)")
	metricsJSON := flag.String("metrics-json", "", "write the run metrics as JSON to this file ('-' = stdout)")
	hist := flag.Bool("hist", false, "print p50/p95/p99 latency/stall/retry histograms")
	perfFlag := flag.Bool("perf", false, "collect saturation telemetry (arb-wait/tenure/retry/mem-service quantiles, arbitration queue depths) and print the report")
	audit := flag.Uint64("audit", 0, "print the event history of this line address after the run (0 = off)")
	serveAddr := flag.String("serve", "", "serve live observability on this address ("+obshttp.EndpointList()+")")
	serveLinger := flag.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the run finishes")
	ledgerPath := flag.String("ledger", "", "with -serve: judge the live run against this run ledger's rolling baseline on /trend (see fbtrend)")
	flag.Parse()

	var boards []sim.BoardSpec
	for _, name := range strings.Split(*protos, ",") {
		spec := sim.BoardSpec{Protocol: strings.TrimSpace(name)}
		// "moesi+drop-inv" = the protocol wrapped in an internal/faults
		// mutation — the fault-injection counterpart of -watch.
		spec.Protocol, spec.Fault = faults.Split(spec.Protocol)
		// "moesi.s4" = a sector cache with 4 sub-sectors per tag.
		if base, subs, ok := strings.Cut(spec.Protocol, ".s"); ok {
			n, err := strconv.Atoi(subs)
			fail(err)
			spec.Protocol, spec.SectorSubs = base, n
		}
		boards = append(boards, spec)
	}
	// Assemble observability sinks; the recorder is only created (and
	// the emission paths only pay their cost) when something consumes
	// the events.
	var sinks []obs.Sink
	var toClose []*os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		toClose = append(toClose, f)
		sinks = append(sinks, obs.NewChromeTraceSink(f))
	}
	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		fail(err)
		toClose = append(toClose, f)
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	if *recordOut != "" {
		f, err := os.Create(*recordOut)
		fail(err)
		toClose = append(toClose, f)
		// The fingerprint captures everything that shapes the event
		// stream, so fbcausal diff can warn when two traces are not
		// comparable runs.
		fp := fmt.Sprintf("fbsim protocols=%s refs=%d workload=%s engine=%s shards=%d bus=%s discipline=%s line=%d sets=%d ways=%d seed=%d pshared=%g pwrite=%g",
			*protos, *refs, *wl, *engine, *shards, *busMode, *discipline, *lineSize, *sets, *ways, *seed, *pshared, *pwrite)
		sinks = append(sinks, obs.NewRecordSink(f, obs.TraceMeta{Fingerprint: fp}))
	}
	if *hist {
		sinks = append(sinks, obs.NewHistogramSink())
	}
	if *perfFlag && *serveAddr == "" {
		// Served runs get their perf sink from the obshttp service (which
		// also exports the histograms on /metrics and the /perf document);
		// a standalone -perf run attaches the bare sink.
		sinks = append(sinks, perf.NewSink(0))
	}
	var auditSink *obs.LineAuditSink
	if *audit != 0 {
		auditSink = obs.NewLineAuditSink(0)
		sinks = append(sinks, auditSink)
	}
	var svc *obshttp.Service
	var wsink *obshttp.WatchSink
	if *serveAddr != "" {
		svc = obshttp.NewService(0)
		if *watchFlag {
			// Served runs route the monitor through the service so
			// /violations and the violation metrics are live.
			wsink = svc.EnableWatch(watch.Config{})
		}
		if *ledgerPath != "" {
			_, err := svc.EnableTrend(*ledgerPath, "", ledger.GateOpts{})
			fail(err)
		}
		sinks = append(sinks, svc.Sinks()...)
	} else if *ledgerPath != "" {
		fail(fmt.Errorf("-ledger requires -serve (the verdict lives on /trend)"))
	}
	var mon *watch.Monitor
	if *watchFlag && wsink == nil {
		mon = watch.New(watch.Config{})
		sinks = append(sinks, mon)
	}
	var rec *obs.Recorder
	if len(sinks) > 0 {
		rec = obs.New(sinks...)
	}

	cfg := sim.Config{
		LineSize:     *lineSize,
		CacheSets:    *sets,
		CacheWays:    *ways,
		Boards:       boards,
		Shadow:       *checkConsistency,
		Paranoid:     *paranoid,
		Obs:          rec,
		Shards:       *shards,
		Tenure:       *busMode,
		Discipline:   *discipline,
		PendingTable: *pendingTable,
	}
	sys, err := sim.New(cfg)
	fail(err)

	var srv *obshttp.Server
	if svc != nil {
		svc.ObserveRecorder(rec)
		for i, spec := range boards {
			svc.Attr.SetProcLabel(i, spec.Protocol)
		}
		sys.RegisterLiveGauges(svc.Registry, sim.DefaultHitLatency)
		srv, err = svc.Serve(*serveAddr)
		fail(err)
		fmt.Fprintf(os.Stderr, "fbsim: serving observability on %s (%s)\n", srv.URL(), obshttp.EndpointList())
	}

	if *watchLine != 0 {
		watchAddr := bus.Addr(*watchLine)
		fmt.Printf("watching line %#x: txn# master col | per-board state\n", *watchLine)
		count := 0
		sys.Bus.SetTrace(func(tx *bus.Transaction, r *bus.Result) {
			if tx.Addr != watchAddr {
				return
			}
			count++
			states := make([]string, len(sys.Caches))
			for i, c := range sys.Caches {
				states[i] = c.State(watchAddr).Letter()
			}
			fmt.Printf("  %4d: m%-3d col%-2d | %s  CH=%-5t DI=%-5t cost=%dns\n",
				count, tx.MasterID, tx.Event().Column(), strings.Join(states, " "), r.CH, r.DI, r.Cost)
		})
	}

	gens := sys.Generators(func(proc int) workload.Generator {
		if *replay != "" {
			f, err := os.Open(fmt.Sprintf("%s.%d.trace", *replay, proc))
			fail(err)
			defer f.Close()
			trace, err := workload.ReadTrace(f)
			fail(err)
			return workload.NewReplay(trace)
		}
		switch *wl {
		case "ab":
			return workload.MustModel(workload.Model{
				Proc: proc, SharedLines: 32, PrivateLines: 80,
				WordsPerLine: sys.WordsPerLine(),
				PShared:      *pshared, PWrite: *pwrite, Locality: 0.5,
			}, *seed)
		case "migratory":
			return workload.NewMigratory(proc, len(boards), 16, 24, sys.WordsPerLine(), *seed)
		case "producer-consumer":
			return workload.NewProducerConsumer(proc, 16, sys.WordsPerLine(), *seed)
		case "read-mostly":
			return workload.NewReadMostly(proc, 32, sys.WordsPerLine(), 0.02, *seed)
		case "ping-pong":
			return workload.NewPingPong(proc, 8, sys.WordsPerLine(), *seed)
		case "zipf":
			return workload.NewZipf(proc, 64, sys.WordsPerLine(), 1.1, *pwrite, *seed)
		default:
			fail(fmt.Errorf("unknown workload %q", *wl))
			return nil
		}
	})

	if *record != "" {
		// Materialise each board's stream, write it out, and replay it
		// for the actual run so the recorded file is exactly what ran.
		for i := range gens {
			trace := workload.Record(gens[i], *refs)
			f, err := os.Create(fmt.Sprintf("%s.%d.trace", *record, i))
			fail(err)
			_, werr := trace.WriteTo(f)
			fail(werr)
			fail(f.Close())
			gens[i] = workload.NewReplay(trace)
		}
		fmt.Printf("recorded %d boards × %d refs to %s.*.trace\n", len(gens), *refs, *record)
	}

	var m sim.Metrics
	switch *engine {
	case "det":
		eng := sim.Engine{Sys: sys, Gens: gens}
		m, err = eng.Run(*refs)
	case "conc":
		m, err = sim.RunConcurrent(sys, gens, *refs)
	default:
		err = fmt.Errorf("unknown engine %q", *engine)
	}
	fail(err)

	// With -metrics-json - the machine-readable document owns stdout,
	// so the human-readable summary moves to stderr to keep stdout
	// parseable (fbsim ... -metrics-json - | jq).
	sum := io.Writer(os.Stdout)
	if *metricsJSON == "-" {
		sum = os.Stderr
	}
	if *checkConsistency {
		fail(sys.Checker().MustPass())
		fmt.Fprintln(sum, "consistency: all invariants hold")
	}
	fmt.Fprintln(sum, m)
	fmt.Fprintf(sum, "bus: %s\n", m.Bus)
	fmt.Fprintf(sum, "memory: reads=%d writes=%d\n", m.Memory.Reads, m.Memory.Writes)
	fmt.Fprintf(sum, "caches: hits=%d misses=%d upgrades=%d flushes=%d snoopHits=%d inv=%d upd=%d captured=%d\n",
		m.Cache.ReadHits+m.Cache.WriteHits, m.Cache.ReadMisses+m.Cache.WriteMisses,
		m.Cache.WriteUpgrades, m.Cache.Flushes, m.Cache.SnoopHits,
		m.Cache.InvalidationsReceived, m.Cache.UpdatesReceived, m.Cache.WritesCaptured)
	if *transitions {
		fmt.Fprintf(sum, "state transitions:\n%s", m.TransitionTable())
	}

	if srv != nil {
		if *serveLinger > 0 {
			fmt.Fprintf(os.Stderr, "fbsim: run finished; observability endpoint stays up for %s\n", *serveLinger)
			time.Sleep(*serveLinger)
		}
		fail(srv.Close())
	}
	if rec != nil {
		fail(rec.Close())
		obs.WarnDropped(os.Stderr, "fbsim", rec)
		if *hist {
			if h := obs.FindHistogram(rec); h != nil {
				fmt.Fprintf(sum, "latency histograms:\n%s", h.Render())
			}
		}
		if *perfFlag {
			if p := perf.FindSink(rec); p != nil {
				fmt.Fprintf(sum, "saturation telemetry:\n%s", p.Snapshot().Render())
			}
		}
		if auditSink != nil {
			fmt.Fprint(sum, auditSink.Explain(*audit))
		}
		for _, f := range toClose {
			fail(f.Close())
		}
		if *traceOut != "" {
			fmt.Fprintf(os.Stderr, "fbsim: wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", *traceOut)
		}
		if *recordOut != "" {
			fmt.Fprintf(os.Stderr, "fbsim: wrote binary trace to %s (fbcausal analyze %s)\n", *recordOut, *recordOut)
		}
	}
	if *metricsJSON != "" {
		out, err := json.MarshalIndent(m, "", "  ")
		fail(err)
		out = append(out, '\n')
		if *metricsJSON == "-" {
			_, err = os.Stdout.Write(out)
		} else {
			err = os.WriteFile(*metricsJSON, out, 0o644)
		}
		fail(err)
	}

	// The invariant verdict comes last so every other artifact (metrics
	// JSON, traces) is written even when the run was dirty; the exit
	// status is what CI gates on.
	if *watchFlag {
		var rep *watch.Report
		if wsink != nil {
			rep = wsink.Report()
		} else {
			rep = mon.Report()
		}
		fmt.Fprintf(sum, "invariants: %s\n", rep.Summary())
		if rep.Total > 0 {
			for i := range rep.Violations {
				fmt.Fprintf(os.Stderr, "fbsim: %s\n", rep.Violations[i].String())
			}
			os.Exit(1)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbsim:", err)
		os.Exit(1)
	}
}
