// Command fbsweep runs the performance experiments (P1–P11 plus the
// handshake-penalty sweep) and prints the paper-style result tables.
//
// Usage:
//
//	fbsweep [-exp P1] [-refs 20000] [-seed 1986] [-bus split] [-discipline rr]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"futurebus/internal/obs"
	"futurebus/internal/obs/obshttp"
	"futurebus/internal/obs/watch"
	"futurebus/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (P1…P11, F1, or 'all')")
	refs := flag.Int("refs", 20000, "references per processor")
	seed := flag.Uint64("seed", 1986, "workload seed")
	jobs := flag.Int("jobs", 0, "worker pool size for -exp all (0 = one per CPU, forced to 1 when tracing so the event stream stays coherent)")
	shards := flag.Int("shards", 1, "fabric shards for every system the sweep builds (1 = single Futurebus)")
	busMode := flag.String("bus", "", "bus tenure policy for every system the sweep builds: atomic or split (default atomic; P11 sweeps its own axis)")
	discipline := flag.String("discipline", "", "arbitration discipline for every system the sweep builds: fcfs, rr, priority or bounded (default fcfs; P11 sweeps its own axis)")
	pendingTable := flag.Int("pending-table", 0, "split-mode pending-transaction table size per shard (0 = default)")
	format := flag.String("format", "table", "output format: table or csv")
	outDir := flag.String("out", "", "also write each report as <dir>/<ID>.csv")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of every system the sweep ran")
	metricsJSON := flag.String("metrics-json", "", "write the reports as JSON to this file ('-' = stdout)")
	jsonOut := flag.String("json", "", "write the battery as a machine-readable document to this file ('-' = stdout): {fbsweep, _meta, reports}, ingestable by fbtrend")
	recordOut := flag.String("record-out", "", "write the sweep's full event stream as a compact binary .fbt trace (analyze offline with fbcausal)")
	hist := flag.Bool("hist", false, "print sweep-wide p50/p95/p99 latency/stall/retry histograms")
	perfFlag := flag.Bool("perf", false, "collect per-run saturation telemetry; P1 gains the p99arb and peakQ columns")
	watchFlag := flag.Bool("watch", false, "run the invariant monitor over every system the sweep builds; exit 1 on any violation")
	serveAddr := flag.String("serve", "", "serve live observability on this address ("+obshttp.EndpointList()+")")
	serveLinger := flag.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the sweep finishes")
	flag.Parse()

	// One recorder instruments every system the experiments build, so
	// histograms and traces cover the whole sweep.
	var sinks []obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		traceFile = f
		sinks = append(sinks, obs.NewChromeTraceSink(f))
	}
	if *hist {
		sinks = append(sinks, obs.NewHistogramSink())
	}
	var recordFile *os.File
	if *recordOut != "" {
		f, err := os.Create(*recordOut)
		fail(err)
		recordFile = f
		fp := fmt.Sprintf("fbsweep exp=%s refs=%d seed=%d shards=%d", strings.ToUpper(*exp), *refs, *seed, *shards)
		sinks = append(sinks, obs.NewRecordSink(f, obs.TraceMeta{Fingerprint: fp}))
	}
	// -serve instruments the whole sweep: the event-fed registry,
	// phase summaries, SSE tail, slow-transaction ring and causal
	// analyzer cover every system the experiments build.
	var svc *obshttp.Service
	var srv *obshttp.Server
	var wsink *obshttp.WatchSink
	if *serveAddr != "" {
		svc = obshttp.NewService(0)
		if *watchFlag {
			wsink = svc.EnableWatch(watch.Config{})
		}
		sinks = append(sinks, svc.Sinks()...)
		var err error
		srv, err = svc.Serve(*serveAddr)
		fail(err)
		fmt.Fprintf(os.Stderr, "fbsweep: serving observability on %s (%s)\n", srv.URL(), obshttp.EndpointList())
	}
	// Each system the sweep builds emits a KindEpoch marker, so one
	// monitor can watch the whole battery without carrying shadow state
	// from one system into the next.
	var mon *watch.Monitor
	if *watchFlag && wsink == nil {
		mon = watch.New(watch.Config{})
		sinks = append(sinks, mon)
	}
	var rec *obs.Recorder
	if len(sinks) > 0 {
		rec = obs.New(sinks...)
	}
	if svc != nil {
		svc.ObserveRecorder(rec)
	}

	opts := sim.ExperimentOpts{
		RefsPerProc: *refs, Seed: *seed, Obs: rec, Shards: *shards, Perf: *perfFlag,
		Tenure: *busMode, Discipline: *discipline, PendingTable: *pendingTable,
	}

	// Experiments are independent and internally deterministic, so the
	// full battery fans out over a bounded worker pool; reports come
	// back in battery order either way. A recorder serialises the run:
	// interleaving event streams from concurrent systems would make the
	// trace (and its histograms) unreadable.
	workers, forced := effectiveWorkers(*jobs, runtime.NumCPU(), rec != nil)
	if forced {
		fmt.Fprintf(os.Stderr, "fbsweep: -jobs %d ignored — tracing (-record-out/-trace-out/-hist/-serve/-watch) forces a serial sweep so the event stream stays coherent\n", *jobs)
	}

	runners := map[string]func(sim.ExperimentOpts) (*sim.Report, error){
		"P2":  sim.UpdateVsInvalidate,
		"P3":  sim.MixedBus,
		"P4":  sim.RandomChoice,
		"P5":  sim.CopyBackVsWriteThrough,
		"P6":  sim.ReplacementStatusRefinement,
		"P7":  sim.LineSizeSweep,
		"P8":  sim.AbortRetryOverhead,
		"P9":  sim.MultiBusScaling,
		"P10": sim.SectorVsPlain,
		"P11": sim.ArbitrationDisciplines,
		"F1":  sim.HandshakePenalty,
		"F2":  sim.HandshakePenalty,
		"F2B": sim.SlowBoardTax,
	}

	var reports []*sim.Report
	switch key := strings.ToUpper(*exp); key {
	case "ALL":
		all, err := sim.RunBattery(sim.Battery(), opts, workers)
		fail(err)
		reports = all
	case "P1":
		rep, err := sim.ProtocolComparison([]string{
			"moesi", "moesi-invalidate", "moesi-update", "berkeley", "dragon",
			"illinois", "write-once", "firefly", "synapse", "write-through",
		}, []int{1, 2, 4, 8, 16}, opts)
		fail(err)
		reports = []*sim.Report{rep}
	default:
		run, ok := runners[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		rep, err := run(opts)
		fail(err)
		reports = []*sim.Report{rep}
	}

	if *outDir != "" {
		fail(os.MkdirAll(*outDir, 0o755))
		for _, rep := range reports {
			name := strings.ReplaceAll(strings.ToLower(rep.ID), "/", "-")
			fail(os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(rep.CSV()), 0o644))
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(reports), *outDir)
	}
	// With -json - the machine-readable document owns stdout and the
	// tables are suppressed, so `fbsweep ... -json - | jq` stays
	// parseable.
	if *jsonOut != "-" {
		for i, rep := range reports {
			if i > 0 {
				fmt.Println()
			}
			if *format == "csv" {
				fmt.Printf("# %s — %s\n", rep.ID, rep.Title)
				fmt.Print(rep.CSV())
			} else {
				fmt.Print(rep.Render())
			}
		}
	}
	if *jsonOut != "" {
		doc := batteryDoc{
			Fbsweep: batteryParams{
				Exp: strings.ToUpper(*exp), Refs: *refs, Seed: *seed, Shards: *shards,
			},
			Meta:    readMeta(),
			Reports: reports,
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		fail(err)
		out = append(out, '\n')
		if *jsonOut == "-" {
			_, err = os.Stdout.Write(out)
		} else {
			err = os.WriteFile(*jsonOut, out, 0o644)
		}
		fail(err)
	}

	if srv != nil {
		if *serveLinger > 0 {
			fmt.Fprintf(os.Stderr, "fbsweep: sweep finished; observability endpoint stays up for %s\n", *serveLinger)
			time.Sleep(*serveLinger)
		}
		fail(srv.Close())
	}
	if rec != nil {
		fail(rec.Close())
		obs.WarnDropped(os.Stderr, "fbsweep", rec)
		if *hist {
			if h := obs.FindHistogram(rec); h != nil {
				fmt.Printf("\nsweep-wide latency histograms:\n%s", h.Render())
			}
		}
		if traceFile != nil {
			fail(traceFile.Close())
			fmt.Fprintf(os.Stderr, "fbsweep: wrote Chrome trace to %s\n", *traceOut)
		}
		if recordFile != nil {
			fail(recordFile.Close())
			fmt.Fprintf(os.Stderr, "fbsweep: wrote binary trace to %s (fbcausal analyze %s)\n", *recordOut, *recordOut)
		}
	}
	if *metricsJSON != "" {
		out, err := json.MarshalIndent(reports, "", "  ")
		fail(err)
		out = append(out, '\n')
		if *metricsJSON == "-" {
			_, err = os.Stdout.Write(out)
		} else {
			err = os.WriteFile(*metricsJSON, out, 0o644)
		}
		fail(err)
	}

	if *watchFlag {
		var rep *watch.Report
		if wsink != nil {
			rep = wsink.Report()
		} else {
			rep = mon.Report()
		}
		fmt.Fprintf(os.Stderr, "fbsweep: invariants: %s\n", rep.Summary())
		if rep.Total > 0 {
			for i := range rep.Violations {
				fmt.Fprintf(os.Stderr, "fbsweep: %s\n", rep.Violations[i].String())
			}
			os.Exit(1)
		}
	}
}

// batteryDoc is the fbsweep -json document: the sweep's parameters,
// run provenance, and every report table. internal/obs/ledger's sweep
// ingester mirrors this shape — keep the two in lockstep.
type batteryDoc struct {
	Fbsweep batteryParams `json:"fbsweep"`
	Meta    batteryMeta   `json:"_meta"`
	Reports []*sim.Report `json:"reports"`
}

type batteryParams struct {
	Exp    string `json:"exp"`
	Refs   int    `json:"refs"`
	Seed   uint64 `json:"seed"`
	Shards int    `json:"shards"`
}

// batteryMeta pins the environment the document was produced in,
// mirroring fbperf's _meta block so the run ledger treats both alike.
type batteryMeta struct {
	GitSHA     string `json:"git_sha,omitempty"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	DateUTC    string `json:"date_utc"`
}

// readMeta pins the environment. The git SHA is best-effort: the
// sweep may run from an exported tree, and a missing SHA must not
// fail the battery.
func readMeta() batteryMeta {
	m := batteryMeta{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		DateUTC:    time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.GitSHA = strings.TrimSpace(string(out))
	}
	return m
}

// effectiveWorkers resolves the -jobs flag: 0 means one worker per
// CPU, and an attached recorder forces a serial sweep (interleaving
// event streams from concurrent systems would make the trace and its
// histograms unreadable). forced reports that an explicit parallel
// request was overridden, so main can say so instead of silently
// running slower than asked.
func effectiveWorkers(jobs, numCPU int, tracing bool) (workers int, forced bool) {
	workers = jobs
	if workers == 0 {
		workers = numCPU
	}
	if tracing && workers != 1 {
		return 1, jobs > 1
	}
	return workers, false
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbsweep:", err)
		os.Exit(1)
	}
}
