package main

import "testing"

// TestEffectiveWorkers pins the -jobs resolution, in particular that a
// recorder forces the sweep serial and that the override is only
// reported when the user explicitly asked for parallelism (forcing a
// defaulted or already-serial request is not worth a notice).
func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		name        string
		jobs, cpus  int
		tracing     bool
		wantWorkers int
		wantForced  bool
	}{
		{"default no tracing", 0, 8, false, 8, false},
		{"explicit no tracing", 4, 8, false, 4, false},
		{"default with tracing", 0, 8, true, 1, false},
		{"explicit serial with tracing", 1, 8, true, 1, false},
		{"explicit parallel with tracing", 4, 8, true, 1, true},
		{"single cpu default", 0, 1, false, 1, false},
	}
	for _, tc := range cases {
		workers, forced := effectiveWorkers(tc.jobs, tc.cpus, tc.tracing)
		if workers != tc.wantWorkers || forced != tc.wantForced {
			t.Errorf("%s: effectiveWorkers(%d, %d, %v) = (%d, %v), want (%d, %v)",
				tc.name, tc.jobs, tc.cpus, tc.tracing, workers, forced, tc.wantWorkers, tc.wantForced)
		}
	}
}
