package main

import (
	"encoding/json"
	"testing"

	"futurebus/internal/obs/ledger"
	"futurebus/internal/sim"
)

// TestEffectiveWorkers pins the -jobs resolution, in particular that a
// recorder forces the sweep serial and that the override is only
// reported when the user explicitly asked for parallelism (forcing a
// defaulted or already-serial request is not worth a notice).
func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		name        string
		jobs, cpus  int
		tracing     bool
		wantWorkers int
		wantForced  bool
	}{
		{"default no tracing", 0, 8, false, 8, false},
		{"explicit no tracing", 4, 8, false, 4, false},
		{"default with tracing", 0, 8, true, 1, false},
		{"explicit serial with tracing", 1, 8, true, 1, false},
		{"explicit parallel with tracing", 4, 8, true, 1, true},
		{"single cpu default", 0, 1, false, 1, false},
	}
	for _, tc := range cases {
		workers, forced := effectiveWorkers(tc.jobs, tc.cpus, tc.tracing)
		if workers != tc.wantWorkers || forced != tc.wantForced {
			t.Errorf("%s: effectiveWorkers(%d, %d, %v) = (%d, %v), want (%d, %v)",
				tc.name, tc.jobs, tc.cpus, tc.tracing, workers, forced, tc.wantWorkers, tc.wantForced)
		}
	}
}

// TestBatteryDocIngestable pins the -json wire format against the run
// ledger's sweep ingester: the two mirror each other by hand, so a key
// rename on either side must fail here, not in a user's ledger.
func TestBatteryDocIngestable(t *testing.T) {
	doc := batteryDoc{
		Fbsweep: batteryParams{Exp: "P11", Refs: 2000, Seed: 1986, Shards: 1},
		Meta:    batteryMeta{GitSHA: "abc1234", Go: "go1.24.0", GOMAXPROCS: 8, CPUs: 8, DateUTC: "2026-08-08T00:00:00Z"},
		Reports: []*sim.Report{{
			ID:      "P11",
			Title:   "tenure × discipline",
			Columns: []string{"tenure", "discipline", "p99arb", "fairness"},
			Rows:    [][]string{{"atomic", "fcfs", "4100", "0.91"}},
		}},
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.Ingest(blob, "p11.json")
	if err != nil {
		t.Fatalf("ledger rejected the -json document: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Kind != ledger.KindSweep || r.Label != "P11" {
		t.Errorf("record kind/label = %s/%s, want fbsweep/P11", r.Kind, r.Label)
	}
	if r.Meta.GitSHA != "abc1234" {
		t.Errorf("provenance lost: %+v", r.Meta)
	}
	if got := r.Metrics["sweep.atomic/fcfs.p99arb"]; got != 4100 {
		t.Errorf("sweep.atomic/fcfs.p99arb = %v, want 4100 (keys: %v)", got, ledger.Keys(recs))
	}
}
