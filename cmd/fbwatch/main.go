// Command fbwatch replays binary .fbt traces (recorded by fbsim /
// fbsweep -record-out) through the runtime invariant monitor and
// reports every protocol-legality violation it finds: §3.1 ownership
// invariants and Table 1/2 action legality, with the blamed
// transaction and the events leading up to each violation.
//
// Usage:
//
//	fbwatch [-json] [-max N] [-context N] run.fbt [more.fbt ...]
//
// Exit status: 0 when every trace is clean, 1 when any trace violated
// an invariant, 2 on usage or I/O errors — so a CI step can gate on a
// recorded run directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"futurebus/internal/obs"
	"futurebus/internal/obs/watch"
)

func main() {
	maxV := flag.Int("max", watch.DefaultMaxViolations, "violation records to keep per trace (counts are always exact)")
	ctxN := flag.Int("context", watch.DefaultContextDepth, "events of per-line context to keep with each violation")
	asJSON := flag.Bool("json", false, "emit each trace's full report as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `fbwatch — offline runtime verification of .fbt traces

usage: fbwatch [-json] [-max N] [-context N] run.fbt [more.fbt ...]

Replays each trace through the shadow-state invariant monitor
(internal/obs/watch) and prints a per-trace verdict. Exits 1 if any
trace violated a coherence invariant, 2 on usage or I/O errors.
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	dirty := false
	for _, path := range flag.Args() {
		rep, meta, err := replay(path, watch.Config{
			MaxViolations: *maxV,
			ContextDepth:  *ctxN,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fbwatch: %s: %v\n", path, err)
			os.Exit(2)
		}
		if rep.Total > 0 {
			dirty = true
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Trace       string `json:"trace"`
				Fingerprint string `json:"fingerprint,omitempty"`
				*watch.Report
			}{path, meta.Fingerprint, rep}); err != nil {
				fmt.Fprintf(os.Stderr, "fbwatch: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		render(path, meta, rep)
	}
	if dirty {
		os.Exit(1)
	}
}

// replay runs one .fbt file through a fresh monitor.
func replay(path string, cfg watch.Config) (*watch.Report, obs.TraceMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, obs.TraceMeta{}, err
	}
	defer f.Close()
	tr, err := obs.NewTraceReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, obs.TraceMeta{}, err
	}
	mon := watch.New(cfg)
	for {
		var e obs.Event
		if err := tr.Next(&e); err != nil {
			if err == io.EOF {
				break
			}
			return nil, obs.TraceMeta{}, err
		}
		mon.Consume(&e)
	}
	return mon.Report(), tr.Meta(), nil
}

func render(path string, meta obs.TraceMeta, rep *watch.Report) {
	fmt.Printf("%s: %s\n", path, rep.Summary())
	if meta.Fingerprint != "" {
		fmt.Printf("  config: %s\n", meta.Fingerprint)
	}
	if rep.Total == 0 {
		return
	}
	for _, c := range rep.Counts {
		fmt.Printf("  %6d × %-28s proto=%s\n", c.N, c.Invariant, c.Proto)
	}
	for i := range rep.Violations {
		v := &rep.Violations[i]
		fmt.Printf("\n  #%d %s\n", v.N, v.String())
		for j := range v.Context {
			e := &v.Context[j]
			fmt.Printf("      t=%-8d %-8s proc=%-2d %s→%s %s tx=%d\n",
				e.TS, e.Kind, e.Proc, e.From, e.To, e.Cause, e.TxID)
		}
	}
	if int64(len(rep.Violations)) < rep.Total {
		fmt.Printf("\n  (%d further violations counted but not stored; rerun with -max)\n",
			rep.Total-int64(len(rep.Violations)))
	}
}
