// Command fbcausal analyzes binary .fbt traces recorded by fbsim /
// fbsweep -record-out: it reconstructs the run's dependency DAG,
// extracts the critical path with per-phase / per-cause blame, and
// diffs two recordings for CI regression gating.
//
// Usage:
//
//	fbcausal analyze [-top N] [-canonical] [-json] run.fbt
//	fbcausal diff [-rel 0.10] [-abs 1000] [-canonical] [-json] old.fbt new.fbt
//	fbcausal export [-o out.jsonl] run.fbt
//
// diff exits 1 when any metric regressed past both thresholds, so a CI
// step can gate on it directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"futurebus/internal/obs"
	"futurebus/internal/obs/causal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fbcausal: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `fbcausal — offline causal critical-path analysis of .fbt traces

  fbcausal analyze [-top N] [-canonical] [-json] run.fbt
      reconstruct the dependency DAG and print the critical path,
      cost-by-cause table and per-board blame

  fbcausal diff [-rel frac] [-abs ns] [-canonical] [-json] old.fbt new.fbt
      compare two recordings per phase and per cause; exits 1 when a
      metric regressed past BOTH thresholds

  fbcausal export [-o file] run.fbt
      re-export the raw event stream as JSON Lines
`)
	os.Exit(2)
}

// load replays one .fbt file. With canonical set, the event stream is
// first rewritten into its scheduler-independent normal form so
// concurrent-engine recordings of the same logical run compare equal.
func load(path string, canonical bool) (obs.TraceMeta, *causal.Analysis) {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	tr, err := obs.NewTraceReader(bufio.NewReaderSize(f, 1<<16))
	fail(err)
	var events []obs.Event
	var a causal.Analyzer
	for {
		var e obs.Event
		if err := tr.Next(&e); err != nil {
			if err == io.EOF {
				break
			}
			fail(fmt.Errorf("%s: %w", path, err))
		}
		if canonical {
			events = append(events, e)
		} else {
			a.Consume(&e)
		}
	}
	if canonical {
		return tr.Meta(), causal.AnalyzeEvents(causal.Canonicalize(events))
	}
	return tr.Meta(), a.Analyze()
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	top := fs.Int("top", 10, "critical-path segments to list")
	canonical := fs.Bool("canonical", false, "canonicalize the event stream first (scheduler-independent view)")
	asJSON := fs.Bool("json", false, "emit the full analysis as JSON")
	fail(fs.Parse(args))
	if fs.NArg() != 1 {
		usage()
	}
	meta, an := load(fs.Arg(0), *canonical)
	if *asJSON {
		writeJSON(os.Stdout, struct {
			Fingerprint string `json:"fingerprint,omitempty"`
			*causal.Analysis
		}{meta.Fingerprint, an})
		return
	}
	if meta.Fingerprint != "" {
		fmt.Printf("trace: %s\nconfig: %s\n\n", fs.Arg(0), meta.Fingerprint)
	}
	an.Render(os.Stdout, *top)
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rel := fs.Float64("rel", causal.DefaultThresholds.Rel, "relative regression threshold (fraction)")
	abs := fs.Int64("abs", causal.DefaultThresholds.Abs, "absolute regression threshold (simulated ns)")
	canonical := fs.Bool("canonical", false, "canonicalize both event streams first (compare concurrent-engine runs)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fail(fs.Parse(args))
	if fs.NArg() != 2 {
		usage()
	}
	oldMeta, oldA := load(fs.Arg(0), *canonical)
	newMeta, newA := load(fs.Arg(1), *canonical)
	report := causal.Diff(oldA, newA, causal.Thresholds{Rel: *rel, Abs: *abs})
	if *asJSON {
		writeJSON(os.Stdout, struct {
			OldFingerprint string `json:"old_fingerprint,omitempty"`
			NewFingerprint string `json:"new_fingerprint,omitempty"`
			*causal.DiffReport
		}{oldMeta.Fingerprint, newMeta.Fingerprint, report})
	} else {
		fmt.Printf("old: %s (%s)\nnew: %s (%s)\n", fs.Arg(0), orUnknown(oldMeta.Fingerprint), fs.Arg(1), orUnknown(newMeta.Fingerprint))
		if oldMeta.Fingerprint != newMeta.Fingerprint {
			fmt.Printf("note: configs differ — deltas compare different runs, not a regression test\n")
		}
		report.Render(os.Stdout)
	}
	if report.Regressions > 0 {
		os.Exit(1)
	}
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fail(fs.Parse(args))
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	fail(err)
	defer f.Close()
	w := io.Writer(os.Stdout)
	if *out != "" {
		of, err := os.Create(*out)
		fail(err)
		defer func() { fail(of.Close()) }()
		w = of
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	sink := obs.NewJSONLSink(bw)
	_, _, err = obs.ReplayTrace(bufio.NewReaderSize(f, 1<<16), sink)
	fail(err)
	fail(sink.Flush())
	fail(bw.Flush())
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown config"
	}
	return s
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fail(enc.Encode(v))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbcausal:", err)
		os.Exit(1)
	}
}
