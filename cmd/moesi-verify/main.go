// Command moesi-verify runs the exhaustive model checker: every
// reachable state of a small abstract system under every permitted
// action choice, checked against the §3.1 invariants. It verifies the
// class and each protocol, then demonstrates the two documented
// mixed-bus hazards (Write-Once and Firefly against O-capable boards)
// with minimal counterexample traces.
//
// Usage:
//
//	moesi-verify [-boards 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
	"futurebus/internal/verify"
)

func main() {
	n := flag.Int("boards", 3, "boards per exploration (1-4)")
	flag.Parse()
	exit := 0

	fmt.Printf("== the full class, %d copy-back boards ==\n", *n)
	boards := make([]verify.Chooser, *n)
	for i := range boards {
		boards[i] = verify.ClassChooser{Variant: core.CopyBack}
	}
	res := verify.Explore(boards)
	fmt.Println(" ", res)
	if !res.Ok() {
		exit = 1
	}

	fmt.Println("\n== class + write-through + non-caching ==")
	res = verify.Explore([]verify.Chooser{
		verify.ClassChooser{Variant: core.CopyBack},
		verify.ClassChooser{Variant: core.CopyBack},
		verify.ClassChooser{Variant: core.WriteThrough},
		verify.ClassChooser{Variant: core.NonCaching},
	})
	fmt.Println(" ", res)
	if !res.Ok() {
		exit = 1
	}

	fmt.Println("\n== each protocol, protocol-pure (3 boards) ==")
	for _, name := range protocols.Names() {
		if name == "random" || name == "round-robin" {
			continue // dynamic choosers range over the whole class (covered above)
		}
		p, err := protocols.New(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		tc := verify.TableChooser{Table: p.Table()}
		res := verify.Explore([]verify.Chooser{tc, tc, tc})
		fmt.Printf("  %-24s %s\n", name, res)
		if !res.Ok() {
			exit = 1
		}
	}

	fmt.Println("\n== the §4 adaptation hazards (expected to be FOUND) ==")
	for _, pair := range [][2]string{{"write-once", "moesi"}, {"firefly", "berkeley"}} {
		a, err := protocols.New(pair[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		b, err := protocols.New(pair[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		res := verify.Explore([]verify.Chooser{
			verify.TableChooser{Table: a.Table()},
			verify.TableChooser{Table: b.Table()},
		})
		fmt.Printf("  %s × %s:\n", pair[0], pair[1])
		if res.Ok() {
			fmt.Println("    NO HAZARD FOUND — this should not happen")
			exit = 1
			continue
		}
		fmt.Printf("    hazard confirmed, witness:\n    %s\n", res.Violations[0])
	}
	os.Exit(exit)
}
