// Command gen regenerates fbperf's compare fixtures
// (testdata/base.json and testdata/regress.json). Run it from
// cmd/fbperf via `go generate ./cmd/fbperf`.
//
// The fixtures are deliberately minimal and hand-shaped rather than
// captured from a live run: every compare-threshold path gets exactly
// one probe, so main_test.go's expectations stay readable and a
// captured run's incidental metrics can't silently widen the gate.
//
//   - perf.arb_wait_ns: p99 doubled in regress — the gated latency
//     regression (rel AND abs-ns both exceeded).
//   - perf.bus_tenure_ns: identical in both — a gated metric that must
//     NOT flag.
//   - perf.retry_backoff_ns: present only in base — compare diffs the
//     intersection, so a metric missing from the new report is skipped.
//   - queue: identical peaks — the abs-depth path stays quiet.
//   - host.alloc_objects_per_ref: tripled in regress — the gated
//     allocation regression (abs-allocs exceeded).
//   - host.alloc_bytes_per_ref: drifts by less than the 16x byte slack
//     — under-threshold drift must not flag.
//   - host.wall_ns / gc_pause_total_ns: wildly worse in regress —
//     advisory metrics never gate.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"

	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
)

// report mirrors cmd/fbperf's Report JSON shape (that type lives in a
// main package, so the fixture generator re-declares the tags).
type report struct {
	Meta    meta            `json:"_meta"`
	Battery string          `json:"battery"`
	Engine  string          `json:"engine"`
	Procs   int             `json:"procs"`
	Refs    int64           `json:"refs"`
	Seed    uint64          `json:"seed"`
	Host    perf.HostReport `json:"host"`
	Sim     *perf.Snapshot  `json:"sim"`
}

type meta struct {
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	DateUTC    string `json:"date_utc"`
}

func summary(p50, p99, p999 int64) obs.Summary {
	return obs.Summary{
		Count: 100, Mean: float64(p50), Min: p50 / 2,
		P50: p50, P90: p99, P95: p99, P99: p99, P999: p999, Max: p999,
	}
}

func base() *report {
	return &report{
		Meta:    meta{Go: "fixture", GOMAXPROCS: 1, CPUs: 1, DateUTC: "2026-08-08T00:00:00Z"},
		Battery: "fixture",
		Engine:  "det",
		Procs:   4,
		Refs:    1000,
		Seed:    1986,
		Host: perf.HostReport{
			WallNS:             1_000_000,
			Refs:               1000,
			AllocBytesTotal:    128_000,
			AllocObjectsTotal:  2000,
			AllocBytesPerRef:   128,
			AllocObjectsPerRef: 2,
			RefsPerSec:         1_000_000,
		},
		Sim: &perf.Snapshot{
			Events: 400,
			Latency: map[string]obs.Summary{
				perf.MetricArbWait: summary(2000, 4000, 4500),
				perf.MetricTenure:  summary(250, 550, 600),
				perf.MetricRetry:   summary(500, 1500, 1600),
			},
			Queue: []perf.QueueStats{
				{Bus: 0, Waits: 120, Peak: 3, Depth: summary(2, 3, 3)},
			},
		},
	}
}

func main() {
	dir := flag.String("dir", "testdata", "directory to write the fixtures into")
	flag.Parse()

	b := base()

	r := base()
	// The two regressions the compare test must flag...
	arb := r.Sim.Latency[perf.MetricArbWait]
	arb.P99 *= 2
	r.Sim.Latency[perf.MetricArbWait] = arb
	r.Host.AllocObjectsPerRef *= 3
	// ...a metric missing from the new report (intersection skip)...
	delete(r.Sim.Latency, perf.MetricRetry)
	// ...under-threshold drift that must stay quiet...
	r.Host.AllocBytesPerRef += 4
	// ...and advisory wall-clock damage that never gates.
	r.Host.WallNS *= 10
	r.Host.GCPauseTotalNS = 5_000_000

	for name, rep := range map[string]*report{"base.json": b, "regress.json": r} {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(filepath.Join(*dir, name), out, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
