package main

import (
	"testing"
)

func defaultThresholds() thresholds {
	return thresholds{rel: 0.10, absNS: 1000, absAllocs: 0.5, absDepth: 2}
}

func regressedNames(deltas []delta, rel float64) []string {
	var out []string
	for _, d := range deltas {
		if d.regressed(rel) {
			out = append(out, d.name)
		}
	}
	return out
}

// A report diffed against itself must never regress — the CI self-diff
// gate depends on this being exactly zero.
func TestCompareSelfDiffClean(t *testing.T) {
	rep, err := readReport("testdata/base.json")
	if err != nil {
		t.Fatal(err)
	}
	th := defaultThresholds()
	if names := regressedNames(compareReports(rep, rep, th), th.rel); len(names) != 0 {
		t.Fatalf("self-diff regressed: %v", names)
	}
}

// The injected-regression fixture doubles the arb-wait p99 and triples
// allocated objects per reference; both must be flagged.
func TestCompareInjectedRegression(t *testing.T) {
	base, err := readReport("testdata/base.json")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := readReport("testdata/regress.json")
	if err != nil {
		t.Fatal(err)
	}
	th := defaultThresholds()
	names := regressedNames(compareReports(base, bad, th), th.rel)
	want := map[string]bool{"perf.arb_wait_ns.p99": false, "host.alloc_objects_per_ref": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		} else {
			t.Errorf("unexpected regression %s", n)
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("regression %s not flagged", n)
		}
	}
}

// The gate requires BOTH the relative and the absolute threshold to be
// exceeded: a large relative jump on a tiny baseline (under the
// absolute slack) and a small relative drift on a large baseline must
// both pass.
func TestDeltaDoubleCondition(t *testing.T) {
	cases := []struct {
		name string
		d    delta
		rel  float64
		want bool
	}{
		{"tiny-baseline-big-rel", delta{"m", 10, 100, 1000, true}, 0.10, false},
		{"big-baseline-small-rel", delta{"m", 1_000_000, 1_040_000, 1000, true}, 0.10, false},
		{"both-exceeded", delta{"m", 10_000, 20_000, 1000, true}, 0.10, true},
		{"advisory-never-gates", delta{"m", 10_000, 90_000, 0, false}, 0.10, false},
		{"zero-baseline-above-abs", delta{"m", 0, 5_000, 1000, true}, 0.10, true},
	}
	for _, c := range cases {
		if got := c.d.regressed(c.rel); got != c.want {
			t.Errorf("%s: regressed = %v, want %v", c.name, got, c.want)
		}
	}
}

// Wall-clock metrics must be present but advisory: they never gate.
func TestCompareWallClockAdvisory(t *testing.T) {
	base, err := readReport("testdata/base.json")
	if err != nil {
		t.Fatal(err)
	}
	th := defaultThresholds()
	for _, d := range compareReports(base, base, th) {
		if (d.name == "host.wall_ns" || d.name == "host.gc_pause_total_ns") && d.gate {
			t.Errorf("%s must be advisory", d.name)
		}
	}
}

func TestReadReportRejectsMissingSim(t *testing.T) {
	if _, err := readReport("testdata/nonexistent.json"); err == nil {
		t.Error("missing file: want error")
	}
}
