// Command fbperf measures what the host pays to run the simulator and
// what the simulated bus pays to run the workload, and gates the two
// against a baseline.
//
//	fbperf run -battery ab -refs 5000 -out perf.json \
//	    -cpuprofile cpu.pprof -heapprofile heap.pprof
//	fbperf compare old.json new.json
//
// `run` drives a named workload battery with a saturation-telemetry
// sink attached (internal/obs/perf), samples the Go runtime around the
// run (allocations per reference, GC pauses, goroutine peak), captures
// optional CPU/heap/mutex/block pprof profiles, and writes a
// structured perf.json report.
//
// `compare` diffs two reports metric by metric. A metric regresses
// when the new value exceeds the old by BOTH the relative threshold
// (-rel) and its absolute slack (-abs-ns / -abs-allocs / -abs-depth) —
// the double condition keeps tiny absolute wobbles on tiny baselines
// from tripping the gate. Simulated-time metrics (latency quantiles,
// queue depth) are deterministic for a fixed battery/seed/engine, so
// they gate hard; wall-clock metrics are reported but never gate.
// Exits 1 on any regression, which is what scripts/bench-compare.sh
// and CI hang the perf gate on.
package main

// The compare fixtures under testdata/ are hand-shaped minimal reports
// (one probe per threshold path); regenerate them after changing the
// report schema with `go generate ./cmd/fbperf`.
//go:generate go run ./testdata/gen

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"futurebus/internal/obs"
	"futurebus/internal/obs/perf"
	"futurebus/internal/obs/regress"
	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

// Meta pins the environment a report was produced in, mirroring the
// _meta object scripts/bench.sh embeds in BENCH json.
type Meta struct {
	GitSHA     string `json:"git_sha,omitempty"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	DateUTC    string `json:"date_utc"`
}

// Report is the perf.json document.
type Report struct {
	Meta    Meta   `json:"_meta"`
	Battery string `json:"battery"`
	Engine  string `json:"engine"`
	Procs   int    `json:"procs"`
	Refs    int64  `json:"refs"`
	Seed    uint64 `json:"seed"`
	// Host is the run's host-cost accounting (wall clock, allocations
	// per reference, GC bill, goroutine peak).
	Host perf.HostReport `json:"host"`
	// Sim is the saturation telemetry in simulated time: latency
	// quantiles and per-shard arbitration queue stats.
	Sim *perf.Snapshot `json:"sim"`
}

// battery is one named workload the runner can drive.
type battery struct {
	desc   string
	boards []sim.BoardSpec
	gens   func(sys *sim.System, procs int, seed uint64) []workload.Generator
}

func homogeneous(protocol string, procs int) []sim.BoardSpec {
	boards := make([]sim.BoardSpec, procs)
	for i := range boards {
		boards[i] = sim.BoardSpec{Protocol: protocol}
	}
	return boards
}

func batteries(procs int) map[string]battery {
	ab := func(sys *sim.System, procs int, seed uint64) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.MustModel(workload.Model{
				Proc: proc, SharedLines: 32, PrivateLines: 80,
				WordsPerLine: sys.WordsPerLine(),
				PShared:      0.2, PWrite: 0.3, Locality: 0.5,
			}, seed)
		})
	}
	return map[string]battery{
		"ab": {"Archibald–Baer model on homogeneous MOESI", homogeneous("moesi", procs), ab},
		"migratory": {"migratory sharing on MOESI-invalidate (BS abort/retry heavy)",
			homogeneous("moesi-invalidate", procs),
			func(sys *sim.System, procs int, seed uint64) []workload.Generator {
				return sys.Generators(func(proc int) workload.Generator {
					return workload.NewMigratory(proc, procs, 16, 24, sys.WordsPerLine(), seed)
				})
			}},
		"ping-pong": {"two-line ping-pong on MOESI (arbitration contention heavy)",
			homogeneous("moesi", procs),
			func(sys *sim.System, procs int, seed uint64) []workload.Generator {
				return sys.Generators(func(proc int) workload.Generator {
					return workload.NewPingPong(proc, 8, sys.WordsPerLine(), seed)
				})
			}},
		"mixed": {"heterogeneous bus: moesi+berkeley+dragon+write-through on the AB model",
			[]sim.BoardSpec{{Protocol: "moesi"}, {Protocol: "berkeley"},
				{Protocol: "dragon"}, {Protocol: "write-through"}}, ab},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fbperf run -battery <name> [-refs N] [-procs N] [-engine det|conc] [-seed S]
             [-out perf.json] [-cpuprofile f] [-heapprofile f]
             [-mutexprofile f] [-blockprofile f]
  fbperf compare [-rel R] [-abs-ns N] [-abs-allocs A] [-abs-depth D] old.json new.json

batteries: ab, migratory, ping-pong, mixed`)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("fbperf run", flag.ExitOnError)
	batteryName := fs.String("battery", "ab", "workload battery: ab, migratory, ping-pong, mixed")
	refs := fs.Int("refs", 5000, "references per board")
	procs := fs.Int("procs", 4, "board count (homogeneous batteries; 'mixed' is fixed at 4)")
	engine := fs.String("engine", "det", "engine: det (deterministic, reproducible telemetry) or conc (goroutine per board)")
	seed := fs.Uint64("seed", 1986, "workload seed")
	shards := fs.Int("shards", 1, "fabric shards")
	out := fs.String("out", "perf.json", "report output path ('-' = stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile")
	heapProfile := fs.String("heapprofile", "", "write a post-run heap profile")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex-contention profile")
	blockProfile := fs.String("blockprofile", "", "write a blocking profile")
	sample := fs.Duration("sample", 5*time.Millisecond, "runtime sampling interval (goroutine peak)")
	fail(fs.Parse(args))

	bat, ok := batteries(*procs)[*batteryName]
	if !ok {
		fail(fmt.Errorf("unknown battery %q (ab, migratory, ping-pong, mixed)", *batteryName))
	}

	// Profile plumbing around the run. Mutex/block profiling must be
	// enabled before the contention happens; rates follow the pprof
	// package's usual guidance (sampled, not exhaustive).
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() { fail(f.Close()) }()
		defer pprof.StopCPUProfile()
	}

	rec := obs.New(perf.NewSink(0))
	sys, err := sim.New(sim.Config{Boards: bat.boards, Obs: rec, Shards: *shards})
	fail(err)
	gens := bat.gens(sys, len(bat.boards), *seed)

	// Bracket the run with host sampling; a ticker tracks the goroutine
	// peak mid-flight (the concurrent engine's fan-out).
	hr := perf.StartHost()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(*sample)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				hr.Sample()
			case <-stop:
				return
			}
		}
	}()

	var m sim.Metrics
	switch *engine {
	case "det":
		eng := sim.Engine{Sys: sys, Gens: gens}
		m, err = eng.Run(*refs)
	case "conc":
		m, err = sim.RunConcurrent(sys, gens, *refs)
	default:
		err = fmt.Errorf("unknown engine %q", *engine)
	}
	close(stop)
	wg.Wait()
	fail(err)
	host := hr.Stop(m.Refs)
	fail(rec.Close())

	if *heapProfile != "" {
		f, err := os.Create(*heapProfile)
		fail(err)
		runtime.GC() // profile live objects, not garbage
		fail(pprof.WriteHeapProfile(f))
		fail(f.Close())
	}
	writeLookup := func(path, name string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		fail(err)
		fail(pprof.Lookup(name).WriteTo(f, 0))
		fail(f.Close())
	}
	writeLookup(*mutexProfile, "mutex")
	writeLookup(*blockProfile, "block")

	rep := Report{
		Meta:    readMeta(),
		Battery: *batteryName,
		Engine:  *engine,
		Procs:   len(bat.boards),
		Refs:    m.Refs,
		Seed:    *seed,
		Host:    host,
		Sim:     perf.FindSink(rec).Snapshot(),
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
	} else {
		err = os.WriteFile(*out, doc, 0o644)
	}
	fail(err)
	fmt.Fprintf(os.Stderr, "fbperf: %s (%s) — %d refs in %.1f ms, %.1f B/ref, %.0f refs/s\n",
		*batteryName, bat.desc, m.Refs, float64(host.WallNS)/1e6,
		host.AllocBytesPerRef, host.RefsPerSec)
}

// readMeta pins the environment. The git SHA is best-effort: fbperf
// may run from an exported tree, and a missing SHA must not fail a
// perf run.
func readMeta() Meta {
	m := Meta{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		DateUTC:    time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.GitSHA = strings.TrimSpace(string(out))
	}
	return m
}

// thresholds configures the compare gate.
type thresholds struct {
	// rel is the relative growth a metric may show before regressing.
	rel float64
	// absNS, absAllocs, absDepth are per-unit absolute slacks: a metric
	// only regresses when it exceeds BOTH rel and its absolute slack.
	absNS     float64
	absAllocs float64
	absDepth  float64
}

// delta is one compared metric.
type delta struct {
	name     string
	old, new float64
	abs      float64 // absolute slack for this metric
	gate     bool    // false = advisory (wall-clock noise)
}

func (d delta) regressed(rel float64) bool {
	if !d.gate {
		return false
	}
	th := regress.Thresholds{Rel: rel, Abs: d.abs}
	return th.Breached(d.old, d.new-d.old)
}

func (d delta) relChange() float64 {
	if d.old == 0 {
		if d.new == 0 {
			return 0
		}
		return 1
	}
	return d.new/d.old - 1
}

// compareReports flattens the two documents into comparable metrics.
func compareReports(old, new *Report, th thresholds) []delta {
	var out []delta
	names := make([]string, 0, len(old.Sim.Latency))
	for name := range old.Sim.Latency {
		if _, ok := new.Sim.Latency[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old.Sim.Latency[name], new.Sim.Latency[name]
		out = append(out,
			delta{name + ".p50", float64(o.P50), float64(n.P50), th.absNS, true},
			delta{name + ".p99", float64(o.P99), float64(n.P99), th.absNS, true},
			delta{name + ".p999", float64(o.P999), float64(n.P999), th.absNS, true},
		)
	}
	out = append(out,
		delta{"queue.peak_depth", float64(old.Sim.PeakQueueDepth()), float64(new.Sim.PeakQueueDepth()), th.absDepth, true},
		delta{"host.alloc_bytes_per_ref", old.Host.AllocBytesPerRef, new.Host.AllocBytesPerRef, th.absAllocs * 16, true},
		delta{"host.alloc_objects_per_ref", old.Host.AllocObjectsPerRef, new.Host.AllocObjectsPerRef, th.absAllocs, true},
		// Wall-clock metrics depend on machine load; report, never gate.
		delta{"host.wall_ns", float64(old.Host.WallNS), float64(new.Host.WallNS), 0, false},
		delta{"host.gc_pause_total_ns", float64(old.Host.GCPauseTotalNS), float64(new.Host.GCPauseTotalNS), 0, false},
	)
	return out
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("fbperf compare", flag.ExitOnError)
	rel := fs.Float64("rel", 0.10, "relative growth allowed before a metric regresses")
	absNS := fs.Float64("abs-ns", 1000, "absolute slack for simulated-ns metrics")
	absAllocs := fs.Float64("abs-allocs", 0.5, "absolute slack for allocated objects per reference (bytes get 16x)")
	absDepth := fs.Float64("abs-depth", 2, "absolute slack for queue-depth metrics")
	fail(fs.Parse(args))
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	old, err := readReport(fs.Arg(0))
	fail(err)
	new, err := readReport(fs.Arg(1))
	fail(err)
	if old.Battery != new.Battery || old.Engine != new.Engine || old.Seed != new.Seed {
		fmt.Fprintf(os.Stderr, "fbperf: warning: comparing %s/%s/seed=%d against %s/%s/seed=%d — deltas may not be meaningful\n",
			old.Battery, old.Engine, old.Seed, new.Battery, new.Engine, new.Seed)
	}

	th := thresholds{rel: *rel, absNS: *absNS, absAllocs: *absAllocs, absDepth: *absDepth}
	deltas := compareReports(old, new, th)
	regressions := 0
	fmt.Printf("%-32s %14s %14s %8s\n", "metric", "old", "new", "change")
	for _, d := range deltas {
		verdict := ""
		if d.regressed(*rel) {
			verdict = "  REGRESSED"
			regressions++
		} else if !d.gate {
			verdict = "  (advisory)"
		}
		fmt.Printf("%-32s %14.1f %14.1f %+7.1f%%%s\n", d.name, d.old, d.new, 100*d.relChange(), verdict)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "fbperf: %d metric(s) regressed beyond rel=%.0f%% plus absolute slack\n", regressions, 100**rel)
		os.Exit(1)
	}
	fmt.Println("fbperf: no regressions")
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Sim == nil {
		return nil, fmt.Errorf("%s: no sim telemetry in report", path)
	}
	return &r, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbperf:", err)
		os.Exit(1)
	}
}
