// Command moesi-tables regenerates the paper's Tables 1–7 from the
// implementation, prints them, and diffs each against the embedded
// paper spec. It also prints the class-membership verdict for every
// registered protocol (§4's compatibility analysis).
//
// Usage:
//
//	moesi-tables [-table T3] [-diff] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"futurebus/internal/core"
	"futurebus/internal/protocols"
	"futurebus/internal/tablegen"
)

func main() {
	table := flag.String("table", "all", "artifact to print (T1…T7 or 'all')")
	diff := flag.Bool("diff", true, "diff regenerated tables against the paper")
	validate := flag.Bool("validate", true, "print class membership for every protocol")
	dot := flag.String("dot", "", "emit a GraphViz state diagram for the named protocol and exit")
	markdown := flag.Bool("markdown", false, "emit the full protocol reference as Markdown and exit")
	flag.Parse()

	if *markdown {
		fmt.Print(tablegen.Markdown())
		return
	}

	if *dot != "" {
		p, err := protocols.New(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(tablegen.DOT(p.Table()))
		return
	}

	exit := 0
	for _, a := range tablegen.Artifacts() {
		if *table != "all" && !strings.EqualFold(*table, a.ID) {
			continue
		}
		fmt.Printf("== %s: %s ==\n", a.ID, a.Title)
		fmt.Println(a.Render())
		if *diff {
			if diffs := a.Diff(); len(diffs) > 0 {
				exit = 1
				fmt.Printf("DIVERGES from the paper (%d cells):\n", len(diffs))
				for _, d := range diffs {
					fmt.Printf("  %s\n", d)
				}
			} else {
				fmt.Println("matches the paper cell for cell.")
			}
		}
		fmt.Println()
	}

	if *validate && *table == "all" {
		fmt.Println("== class membership (§4) ==")
		for _, name := range protocols.Names() {
			p, err := protocols.New(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
				continue
			}
			rep := core.Validate(p.Table(), p.Variant())
			fmt.Printf("  %-24s %s\n", name, rep.Verdict)
			for _, adapted := range rep.AdaptedActions {
				fmt.Printf("    adapted: %s\n", adapted)
			}
			for _, v := range rep.Violations {
				fmt.Printf("    VIOLATION: %s\n", v)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
