// Command fblens analyzes the coherence behaviour captured in binary
// .fbt traces recorded by fbsim / fbsweep -record-out: per-protocol
// MOESI transition matrices split by cause, state-residency shares,
// per-line ownership chains, write invalidation/update fan-out, and
// cache-to-cache vs memory read sourcing.
//
// Usage:
//
//	fblens analyze [-top N] [-json] [-html out.html] run.fbt
//	fblens diff [-rel 0.05] [-abs 0.001] [-json] old.fbt new.fbt
//
// diff exits 1 when a coherence rate regressed past both thresholds,
// so a CI step can gate on it directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"futurebus/internal/obs"
	"futurebus/internal/obs/coherence"
)

// Default diff thresholds. The compared metrics are rates (per
// transition, shares, fan-out means), so the absolute gate is a small
// rate delta, not nanoseconds.
const (
	defaultRel = 0.05
	defaultAbs = 0.001
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fblens: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `fblens — coherence-state analytics over .fbt traces

  fblens analyze [-top N] [-json] [-html file] run.fbt
      reconstruct per-line MOESI lifetimes and print per-protocol
      transition matrices, residency, ownership chains and write
      fan-out; -html additionally writes a self-contained report

  fblens diff [-rel frac] [-abs rate] [-json] old.fbt new.fbt
      compare two recordings' coherence rates per protocol; exits 1
      when a rate regressed past BOTH thresholds
`)
	os.Exit(2)
}

// load replays one .fbt file through a fresh analyzer.
func load(path string, topN int) (obs.TraceMeta, *coherence.Analysis) {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	tr, err := obs.NewTraceReader(bufio.NewReaderSize(f, 1<<16))
	fail(err)
	var a coherence.Analyzer
	for {
		var e obs.Event
		if err := tr.Next(&e); err != nil {
			if err == io.EOF {
				break
			}
			fail(fmt.Errorf("%s: %w", path, err))
		}
		a.Consume(&e)
	}
	return tr.Meta(), a.Analyze(topN)
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	top := fs.Int("top", coherence.DefaultTopLines, "busiest lines to list")
	asJSON := fs.Bool("json", false, "emit the full analysis as JSON")
	htmlOut := fs.String("html", "", "also write a self-contained HTML report to this file")
	fail(fs.Parse(args))
	if fs.NArg() != 1 {
		usage()
	}
	meta, an := load(fs.Arg(0), *top)
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		fail(err)
		fail(an.RenderHTML(f))
		fail(f.Close())
	}
	if *asJSON {
		writeJSON(os.Stdout, struct {
			Fingerprint string `json:"fingerprint,omitempty"`
			*coherence.Analysis
		}{meta.Fingerprint, an})
		return
	}
	if meta.Fingerprint != "" {
		fmt.Printf("trace: %s\nconfig: %s\n\n", fs.Arg(0), meta.Fingerprint)
	}
	an.Render(os.Stdout)
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rel := fs.Float64("rel", defaultRel, "relative regression threshold (fraction)")
	abs := fs.Float64("abs", defaultAbs, "absolute regression threshold (rate delta)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fail(fs.Parse(args))
	if fs.NArg() != 2 {
		usage()
	}
	oldMeta, oldA := load(fs.Arg(0), -1)
	newMeta, newA := load(fs.Arg(1), -1)
	report := coherence.Diff(oldA, newA, *rel, *abs)
	if *asJSON {
		writeJSON(os.Stdout, struct {
			OldFingerprint string `json:"old_fingerprint,omitempty"`
			NewFingerprint string `json:"new_fingerprint,omitempty"`
			*coherence.DiffReport
		}{oldMeta.Fingerprint, newMeta.Fingerprint, report})
	} else {
		fmt.Printf("old: %s (%s)\nnew: %s (%s)\n", fs.Arg(0), orUnknown(oldMeta.Fingerprint), fs.Arg(1), orUnknown(newMeta.Fingerprint))
		if oldMeta.Fingerprint != newMeta.Fingerprint {
			fmt.Printf("note: configs differ — deltas compare different runs, not a regression test\n")
		}
		report.Render(os.Stdout)
	}
	if report.Regressions > 0 {
		os.Exit(1)
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown config"
	}
	return s
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fail(enc.Encode(v))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fblens:", err)
		os.Exit(1)
	}
}
