// Command fbtrace reproduces Figures 1 and 2 of the paper: it simulates
// one broadcast address handshake on the open-collector AS*/AK*/AI*
// lines and prints the event trace, then optionally traces live bus
// transactions from a small simulation.
//
// Usage:
//
//	fbtrace [-slaves 3] [-filter 25] [-txns 12]
package main

import (
	"flag"
	"fmt"
	"os"

	"futurebus/internal/bus"
	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

func main() {
	slaves := flag.Int("slaves", 3, "number of responding modules")
	filter := flag.Int64("filter", 25, "wired-OR glitch filter delay (ns)")
	txns := flag.Int("txns", 12, "live bus transactions to trace (0 to skip)")
	flag.Parse()

	cfg := bus.DefaultHandshakeConfig()
	cfg.GlitchFilter = *filter
	for len(cfg.Slaves) < *slaves {
		n := int64(len(cfg.Slaves))
		cfg.Slaves = append(cfg.Slaves, bus.SlaveTiming{AckDelay: 5 + n, ProcessTime: 40 + 17*n})
	}
	cfg.Slaves = cfg.Slaves[:*slaves]

	fmt.Print(bus.SimulateBroadcastHandshake(cfg).Render())

	if *txns <= 0 {
		return
	}
	fmt.Printf("\nLive transaction trace (4×moesi + 1 uncached DMA):\n")
	sysCfg := sim.Homogeneous("moesi", 4)
	sysCfg.Boards = append(sysCfg.Boards, sim.BoardSpec{Protocol: "uncached"})
	sys, err := sim.New(sysCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbtrace:", err)
		os.Exit(1)
	}
	count := 0
	sys.Bus.SetTrace(func(tx *bus.Transaction, r *bus.Result) {
		if count >= *txns {
			return
		}
		count++
		fmt.Printf("  %2d. %s -> col %d, CH=%t DI=%t SL=%t retries=%d cost=%dns\n",
			count, tx, tx.Event().Column(), r.CH, r.DI, r.SL, r.Retries, r.Cost)
	})
	gens := sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc: proc, SharedLines: 8, PrivateLines: 16,
			WordsPerLine: sys.WordsPerLine(), PShared: 0.5, PWrite: 0.4,
		}, 7)
	})
	eng := sim.Engine{Sys: sys, Gens: gens}
	if _, err := eng.Run(*txns); err != nil {
		fmt.Fprintln(os.Stderr, "fbtrace:", err)
		os.Exit(1)
	}
}
