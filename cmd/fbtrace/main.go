// Command fbtrace reproduces Figures 1 and 2 of the paper: it simulates
// one broadcast address handshake on the open-collector AS*/AK*/AI*
// lines and prints the event trace, then optionally traces live bus
// transactions from a small simulation.
//
// Usage:
//
//	fbtrace [-slaves 3] [-filter 25] [-txns 12]
package main

import (
	"flag"
	"fmt"
	"os"

	"futurebus/internal/bus"
	"futurebus/internal/obs"
	"futurebus/internal/sim"
	"futurebus/internal/workload"
)

func main() {
	slaves := flag.Int("slaves", 3, "number of responding modules")
	filter := flag.Int64("filter", 25, "wired-OR glitch filter delay (ns)")
	txns := flag.Int("txns", 12, "live bus transactions to trace (0 to skip)")
	flag.Parse()

	cfg := bus.DefaultHandshakeConfig()
	cfg.GlitchFilter = *filter
	for len(cfg.Slaves) < *slaves {
		n := int64(len(cfg.Slaves))
		cfg.Slaves = append(cfg.Slaves, bus.SlaveTiming{AckDelay: 5 + n, ProcessTime: 40 + 17*n})
	}
	cfg.Slaves = cfg.Slaves[:*slaves]

	fmt.Print(bus.SimulateBroadcastHandshake(cfg).Render())

	if *txns <= 0 {
		return
	}
	fmt.Printf("\nLive transaction trace (4×moesi + 1 uncached DMA):\n")
	// The live trace is an obs sink: the bus emits a structured event
	// per completed transaction and the sink renders it. Events arrive
	// in bus order (the ring preserves emission sequence).
	count := 0
	printer := obs.SinkFunc(func(e *obs.Event) {
		if e.Kind != obs.KindTx || count >= *txns {
			return
		}
		count++
		fmt.Printf("  %2d. t=%-7d m%-2d %s %#x -> col %d, CH=%t DI=%t SL=%t retries=%d cost=%dns\n",
			count, e.TS, e.Proc, e.Op, e.Addr, e.Col, e.CH, e.DI, e.SL, e.Retries, e.Dur)
	})
	rec := obs.New(printer)

	sysCfg := sim.Homogeneous("moesi", 4)
	sysCfg.Boards = append(sysCfg.Boards, sim.BoardSpec{Protocol: "uncached"})
	sysCfg.Obs = rec
	sys, err := sim.New(sysCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbtrace:", err)
		os.Exit(1)
	}
	gens := sys.Generators(func(proc int) workload.Generator {
		return workload.MustModel(workload.Model{
			Proc: proc, SharedLines: 8, PrivateLines: 16,
			WordsPerLine: sys.WordsPerLine(), PShared: 0.5, PWrite: 0.4,
		}, 7)
	})
	eng := sim.Engine{Sys: sys, Gens: gens}
	if _, err := eng.Run(*txns); err != nil {
		fmt.Fprintln(os.Stderr, "fbtrace:", err)
		os.Exit(1)
	}
	if err := rec.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fbtrace:", err)
		os.Exit(1)
	}
}
