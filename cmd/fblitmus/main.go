// Command fblitmus runs litmus tests (directed coherence tests) against
// the simulated Futurebus. Each test runs under many interleavings —
// the two sequential extremes plus seeded random schedules — with
// always/sometimes/never assertions over registers and final memory,
// plus the full consistency-invariant suite per schedule.
//
// Usage:
//
//	fblitmus litmus/*.litmus
//	fblitmus -v litmus/coherence.litmus
package main

import (
	"flag"
	"fmt"
	"os"

	"futurebus/internal/litmus"
)

func main() {
	verbose := flag.Bool("v", false, "print witnesses for 'sometimes' assertions")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fblitmus [-v] <file.litmus>...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fblitmus:", err)
			exit = 1
			continue
		}
		test, err := litmus.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fblitmus: %s: %v\n", path, err)
			exit = 1
			continue
		}
		res, err := litmus.Run(test)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fblitmus: %s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Println(res)
		if *verbose {
			for src, sched := range res.Witness {
				fmt.Printf("  witness: %s (schedule %d)\n", src, sched)
			}
		}
		if !res.Ok() {
			exit = 1
		}
	}
	os.Exit(exit)
}
