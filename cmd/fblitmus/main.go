// Command fblitmus runs litmus tests (directed coherence tests) against
// the simulated Futurebus. Each test runs under many interleavings —
// the two sequential extremes plus seeded random schedules — with
// always/sometimes/never assertions over registers and final memory,
// plus the full consistency-invariant suite per schedule.
//
// Usage:
//
//	fblitmus litmus/*.litmus
//	fblitmus -v litmus/coherence.litmus
package main

import (
	"flag"
	"fmt"
	"os"

	"futurebus/internal/litmus"
)

func main() {
	verbose := flag.Bool("v", false, "print witnesses for 'sometimes' assertions")
	busMode := flag.String("bus", "", "bus tenure policy for every schedule: atomic (default) or split")
	discipline := flag.String("discipline", "", "arbitration discipline: fcfs (default), rr, priority or bounded")
	shards := flag.Int("shards", 0, "override the fabric shard count (0 = the test file's own setting)")
	watchFlag := flag.Bool("watch", false, "run the invariant monitor over every schedule; any violation fails the test")
	parallel := flag.Int("parallel", 0, "also run each test this many rounds with real goroutine scheduling (schedule-independent assertions only)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fblitmus [-v] [-bus split] [-discipline rr] [-shards 4] [-watch] <file.litmus>...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fblitmus:", err)
			exit = 1
			continue
		}
		test, err := litmus.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fblitmus: %s: %v\n", path, err)
			exit = 1
			continue
		}
		test.Tenure, test.Discipline, test.Watch = *busMode, *discipline, *watchFlag
		if *shards > 0 {
			test.Shards = *shards
		}
		res, err := litmus.Run(test)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fblitmus: %s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Println(res)
		if *verbose {
			for src, sched := range res.Witness {
				fmt.Printf("  witness: %s (schedule %d)\n", src, sched)
			}
		}
		if !res.Ok() {
			exit = 1
		}
		if *parallel > 0 {
			pres, err := litmus.RunParallel(test, *parallel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fblitmus: %s (parallel): %v\n", path, err)
				exit = 1
				continue
			}
			fmt.Printf("%s (parallel %d rounds)\n", pres, *parallel)
			if !pres.Ok() {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
