module futurebus

go 1.22
