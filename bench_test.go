// Benchmark harness: one benchmark per table and figure of the paper
// plus one per performance experiment (see DESIGN.md's index). The
// table benchmarks measure regeneration + diff of the paper artifact;
// the figure benchmarks measure the bus-level machinery the figure
// describes; the P* benchmarks each run a complete simulation of the
// corresponding experiment's configuration and report protocol-level
// metrics alongside ns/op.
package futurebus_test

import (
	"fmt"
	"io"

	"testing"

	"futurebus/internal/bus"
	"futurebus/internal/cache"
	"futurebus/internal/core"
	"futurebus/internal/hierarchy"
	"futurebus/internal/litmus"
	"futurebus/internal/memory"
	"futurebus/internal/obs"
	"futurebus/internal/obs/obshttp"
	"futurebus/internal/obs/perf"
	"futurebus/internal/obs/watch"
	"futurebus/internal/protocols"
	"futurebus/internal/sim"
	"futurebus/internal/tablegen"
	"futurebus/internal/verify"
	"futurebus/internal/workload"
)

// benchArtifact regenerates and diffs one paper table per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	var artifact tablegen.Artifact
	for _, a := range tablegen.Artifacts() {
		if a.ID == id {
			artifact = a
		}
	}
	if artifact.ID == "" {
		b.Fatalf("no artifact %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if diffs := artifact.Diff(); len(diffs) != 0 {
			b.Fatalf("%s diverges: %v", id, diffs)
		}
		if artifact.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchArtifact(b, "T1") }
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "T2") }
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "T3") }
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "T4") }
func BenchmarkTable5(b *testing.B) { benchArtifact(b, "T5") }
func BenchmarkTable6(b *testing.B) { benchArtifact(b, "T6") }
func BenchmarkTable7(b *testing.B) { benchArtifact(b, "T7") }

// BenchmarkFigure1Handshake simulates the Figure 1 broadcast wired-OR
// handshake.
func BenchmarkFigure1Handshake(b *testing.B) {
	cfg := bus.DefaultHandshakeConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := bus.SimulateBroadcastHandshake(cfg)
		if tr.Complete == 0 {
			b.Fatal("no completion")
		}
	}
}

// BenchmarkFigure2AddressCycle measures one full Figure 2 address cycle
// on a live bus: broadcast snoop of 7 caches plus data phase.
func BenchmarkFigure2AddressCycle(b *testing.B) {
	mem := memory.New(32)
	bb := bus.New(mem, bus.Config{LineSize: 32})
	for i := 0; i < 7; i++ {
		cache.New(i, bb, protocols.MOESI(), cache.Config{Sets: 64, Ways: 2})
	}
	tx := &bus.Transaction{MasterID: 99, Signals: core.SigCA, Op: core.BusRead, Addr: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.Execute(tx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Classify measures the attribute→state mapping of
// Figure 3.
func BenchmarkFigure3Classify(b *testing.B) {
	var sink core.State
	for i := 0; i < b.N; i++ {
		sink = core.StateFromAttributes(i&1 == 0, i&2 == 0, i&4 == 0)
	}
	_ = sink
}

// BenchmarkFigure4Pairs measures the state-pair predicates of Figure 4.
func BenchmarkFigure4Pairs(b *testing.B) {
	var sink bool
	for i := 0; i < b.N; i++ {
		s := core.States[i%5]
		sink = s.Intervenient() || s.MayModifySilently() || s.MustAnnounceWrite()
	}
	_ = sink
}

// benchSim runs one simulated system per iteration and reports
// transactions and bytes per reference.
func benchSim(b *testing.B, cfg sim.Config, gens func(sys *sim.System) []workload.Generator, refs int) {
	b.Helper()
	var lastTrans, lastBytes float64
	for i := 0; i < b.N; i++ {
		sys, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.Engine{Sys: sys, Gens: gens(sys)}
		m, err := eng.Run(refs)
		if err != nil {
			b.Fatal(err)
		}
		lastTrans, lastBytes = m.TransPerRef(), m.BytesPerRef()
	}
	b.ReportMetric(lastTrans, "trans/ref")
	b.ReportMetric(lastBytes, "bytes/ref")
}

func abGens(pShared, pWrite float64) func(sys *sim.System) []workload.Generator {
	return func(sys *sim.System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.MustModel(workload.Model{
				Proc: proc, SharedLines: 32, PrivateLines: 80,
				WordsPerLine: sys.WordsPerLine(),
				PShared:      pShared, PWrite: pWrite, Locality: 0.5,
			}, 1986)
		})
	}
}

// BenchmarkP1 runs the protocol-comparison configuration for each
// protocol (experiment P1 / [Arch85]).
func BenchmarkP1(b *testing.B) {
	for _, name := range []string{
		"moesi", "moesi-invalidate", "moesi-update", "berkeley", "dragon",
		"illinois", "write-once", "firefly", "write-through",
	} {
		b.Run(name, func(b *testing.B) {
			benchSim(b, sim.Homogeneous(name, 4), abGens(0.2, 0.3), 2000)
		})
	}
}

// BenchmarkP2 runs the update-vs-invalidate separator workloads.
func BenchmarkP2(b *testing.B) {
	pc := func(sys *sim.System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.NewProducerConsumer(proc, 16, sys.WordsPerLine(), 1986)
		})
	}
	b.Run("producer-consumer/moesi", func(b *testing.B) {
		benchSim(b, sim.Homogeneous("moesi", 4), pc, 2000)
	})
	b.Run("producer-consumer/moesi-invalidate", func(b *testing.B) {
		benchSim(b, sim.Homogeneous("moesi-invalidate", 4), pc, 2000)
	})
}

// BenchmarkP3 runs the heterogeneous mixed bus.
func BenchmarkP3(b *testing.B) {
	cfg := sim.Config{Boards: []sim.BoardSpec{
		{Protocol: "moesi"}, {Protocol: "moesi-invalidate"}, {Protocol: "berkeley"},
		{Protocol: "dragon"}, {Protocol: "write-through"}, {Protocol: "uncached"},
	}}
	benchSim(b, cfg, abGens(0.3, 0.3), 2000)
}

// BenchmarkP4 runs the random-choice boards of §3.4.
func BenchmarkP4(b *testing.B) {
	benchSim(b, sim.Homogeneous("random", 4), abGens(0.4, 0.4), 2000)
}

// BenchmarkP5 contrasts copy-back with write-through traffic.
func BenchmarkP5(b *testing.B) {
	b.Run("moesi", func(b *testing.B) {
		benchSim(b, sim.Homogeneous("moesi", 4), abGens(0.2, 0.5), 2000)
	})
	b.Run("write-through", func(b *testing.B) {
		benchSim(b, sim.Homogeneous("write-through", 4), abGens(0.2, 0.5), 2000)
	})
}

// BenchmarkP6 runs the §5.2 recency-adaptive refinement.
func BenchmarkP6(b *testing.B) {
	benchSim(b, sim.Homogeneous("moesi-adaptive", 4), abGens(0.3, 0.3), 2000)
}

// BenchmarkP7 sweeps line size on the spatial-locality workload.
func BenchmarkP7(b *testing.B) {
	for _, lineSize := range []int{16, 64} {
		b.Run(map[int]string{16: "line16", 64: "line64"}[lineSize], func(b *testing.B) {
			cfg := sim.Homogeneous("moesi", 4)
			cfg.LineSize = lineSize
			cfg.CacheSets = 4096 / lineSize / 2
			gens := func(sys *sim.System) []workload.Generator {
				return sys.Generators(func(proc int) workload.Generator {
					return workload.NewSequential(proc, 4096, sys.WordsPerLine(), 0.05, 1986)
				})
			}
			benchSim(b, cfg, gens, 2000)
		})
	}
}

// BenchmarkP8 measures the BS abort/retry cost on migratory sharing.
func BenchmarkP8(b *testing.B) {
	mig := func(sys *sim.System) []workload.Generator {
		return sys.Generators(func(proc int) workload.Generator {
			return workload.NewMigratory(proc, 4, 16, 24, sys.WordsPerLine(), 1986)
		})
	}
	b.Run("illinois", func(b *testing.B) {
		benchSim(b, sim.Homogeneous("illinois", 4), mig, 2000)
	})
	b.Run("berkeley", func(b *testing.B) {
		benchSim(b, sim.Homogeneous("berkeley", 4), mig, 2000)
	})
}

// BenchmarkP9 runs the two-level hierarchy (§6 extension): one 4×4
// tree per iteration with cluster-heavy sharing.
func BenchmarkP9(b *testing.B) {
	var lastGlobal float64
	for i := 0; i < b.N; i++ {
		sys, err := hierarchy.New(hierarchy.Config{
			Clusters: 4, ProcsPerCluster: 4, CacheSets: 32, CacheWays: 2, Shadow: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		gens := make([][]workload.Generator, 4)
		for ci := 0; ci < 4; ci++ {
			for pi := 0; pi < 4; pi++ {
				m := hierarchy.ClusterModel{
					Cluster: ci, Proc: pi,
					GlobalSharedLines: 16, ClusterSharedLines: 24, PrivateLines: 48,
					PGlobal: 0.05, PCluster: 0.25, PWrite: 0.3,
					WordsPerLine: sys.Global.LineSize() / 4,
				}
				gens[ci] = append(gens[ci], m.NewGenerator(1986))
			}
		}
		if err := hierarchy.Run(sys, gens, 500); err != nil {
			b.Fatal(err)
		}
		st := sys.CollectStats()
		lastGlobal = float64(st.GlobalTransactions) / float64(500*16)
	}
	b.ReportMetric(lastGlobal, "globalTrans/ref")
}

// BenchmarkP10 runs the sector-cache organisation on the reuse
// workload.
func BenchmarkP10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mem := memory.New(16)
		bb := bus.New(mem, bus.Config{LineSize: 16})
		caches := make([]*cache.SectorCache, 4)
		for j := range caches {
			caches[j] = cache.NewSector(j, bb, protocols.MOESI(),
				cache.SectorConfig{Sets: 32, Ways: 2, SubSectors: 4})
		}
		gens := make([]workload.Generator, 4)
		for j := range gens {
			gens[j] = workload.NewSequential(j, 640, 4, 0.02, 1986)
		}
		for n := 0; n < 2000; n++ {
			for j, c := range caches {
				ref := gens[j].Next()
				var err error
				if ref.Write {
					err = c.WriteWord(bus.Addr(ref.Line), ref.Word, ref.Val)
				} else {
					_, err = c.ReadWord(bus.Addr(ref.Line), ref.Word)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkShardedFabric runs the concurrent engine over the
// address-interleaved backplane at 1/2/4/8 shards: 8 mostly-private
// MOESI boards whose working sets spread across the shards. The
// refs/simms metric is simulated throughput — references retired per
// simulated millisecond, with the backplane term taken from the
// busiest shard — and is the scaling signal to compare across the
// sub-benchmarks: it rises with shard count as transactions that
// would serialise on one Futurebus proceed on independent shards.
// (Wall-clock ns/op only shows parallel speedup when the host grants
// the goroutines multiple CPUs.)
func BenchmarkShardedFabric(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			var m sim.Metrics
			for i := 0; i < b.N; i++ {
				cfg := sim.Homogeneous("moesi", 8)
				cfg.Shards = shards
				sys, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				m, err = sim.RunConcurrent(sys, abGens(0.05, 0.3)(sys), 1500)
				if err != nil {
					b.Fatal(err)
				}
			}
			if m.ElapsedNanos > 0 {
				b.ReportMetric(float64(m.Refs)/(float64(m.ElapsedNanos)/1e6), "refs/simms")
			}
			b.ReportMetric(m.BusUtilization(), "busutil")
		})
	}
}

// BenchmarkArbitration runs the P11 cell configuration — 8 MOESI
// boards ping-ponging over 4 contested lines — for every bus tenure ×
// arbitration discipline, reporting the saturation signals alongside
// ns/op: p99 arbitration wait (simulated ns), the Jain fairness index
// over per-board cumulative wait, and split-mode NACKs. This is the
// BENCH_<date>.json capture of the discipline axis: fcfs/rr/bounded
// hold fairness at 1.0 and pay the long tail, priority trades the
// tail for starved high boards (fairness falls), and split tenure
// overlaps memory service with other masters' address cycles.
func BenchmarkArbitration(b *testing.B) {
	for _, tenure := range []string{"atomic", "split"} {
		for _, disc := range bus.DisciplineNames() {
			b.Run(tenure+"/"+disc, func(b *testing.B) {
				var p99, fair, nacks float64
				for i := 0; i < b.N; i++ {
					cfg := sim.Homogeneous("moesi", 8)
					cfg.Tenure, cfg.Discipline = tenure, disc
					rec := obs.New(perf.NewSink(0))
					cfg.Obs = rec
					sys, err := sim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					gens := sys.Generators(func(proc int) workload.Generator {
						return workload.NewPingPong(proc, 4, sys.WordsPerLine(), 1986)
					})
					eng := sim.Engine{Sys: sys, Gens: gens}
					m, err := eng.Run(1200)
					_ = rec.Close()
					if err != nil {
						b.Fatal(err)
					}
					if m.Perf != nil {
						p99 = float64(m.Perf.Latency[perf.MetricArbWait].P99)
						fair = m.Perf.ArbFairness
					}
					nacks = float64(m.Bus.Nacks)
				}
				b.ReportMetric(p99, "p99arb_ns")
				b.ReportMetric(fair, "fairness")
				b.ReportMetric(nacks, "nacks")
			})
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkBusLockedRMW measures the atomic FetchAdd round trip.
func BenchmarkBusLockedRMW(b *testing.B) {
	mem := memory.New(32)
	bb := bus.New(mem, bus.Config{LineSize: 32})
	c := cache.New(0, bb, protocols.MOESI(), cache.Config{Sets: 64, Ways: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.FetchAdd(1, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCleanCommand measures the §6 CmdClean cycle against a dirty
// owner (abort + push + retry).
func BenchmarkCleanCommand(b *testing.B) {
	mem := memory.New(32)
	bb := bus.New(mem, bus.Config{LineSize: 32})
	c := cache.New(0, bb, protocols.MOESI(), cache.Config{Sets: 64, Ways: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := c.WriteWord(5, 0, uint32(i)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := cache.CleanLine(bb, 99, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheReadHit is the pure processor-side fast path.
func BenchmarkCacheReadHit(b *testing.B) {
	mem := memory.New(32)
	bb := bus.New(mem, bus.Config{LineSize: 32})
	c := cache.New(0, bb, protocols.MOESI(), cache.Config{Sets: 64, Ways: 2})
	if _, err := c.ReadWord(1, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadWord(1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSilentWrite is the E/M silent write path.
func BenchmarkCacheSilentWrite(b *testing.B) {
	mem := memory.New(32)
	bb := bus.New(mem, bus.Config{LineSize: 32})
	c := cache.New(0, bb, protocols.MOESI(), cache.Config{Sets: 64, Ways: 2})
	if err := c.WriteWord(1, 0, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteWord(1, 0, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastUpdate is the full update-protocol write: bus
// broadcast, three SL snoopers merging the word.
func BenchmarkBroadcastUpdate(b *testing.B) {
	mem := memory.New(32)
	bb := bus.New(mem, bus.Config{LineSize: 32})
	caches := make([]*cache.Cache, 4)
	for i := range caches {
		caches[i] = cache.New(i, bb, protocols.MOESIUpdate(), cache.Config{Sets: 64, Ways: 2})
	}
	for _, c := range caches {
		if _, err := c.ReadWord(1, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := caches[i%4].WriteWord(1, 0, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomPolicyChoice measures the §3.4 dynamic chooser.
func BenchmarkRandomPolicyChoice(b *testing.B) {
	p := protocols.NewRandom(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.ChooseLocal(core.Shared, core.LocalWrite); !ok {
			b.Fatal("no choice")
		}
	}
}

// BenchmarkWorkloadModel measures reference generation.
func BenchmarkWorkloadModel(b *testing.B) {
	g := workload.MustModel(workload.Model{
		SharedLines: 32, PrivateLines: 80, WordsPerLine: 8,
		PShared: 0.3, PWrite: 0.3, Locality: 0.5,
	}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkClassValidation measures validating a full protocol table
// against the class.
func BenchmarkClassValidation(b *testing.B) {
	p := protocols.MOESI()
	tbl := p.Table()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := core.Validate(tbl, core.CopyBack); rep.Verdict != core.InClass {
			b.Fatal(rep)
		}
	}
}

// BenchmarkLitmus runs the coherence litmus test (one full multi-
// schedule pass per iteration).
func BenchmarkLitmus(b *testing.B) {
	src := `
name: bench
boards: moesi, dragon
addr X = 0x10
proc P0:
  write X[0] 1
  read  X[0] -> a
proc P1:
  write X[0] 2
  read  X[0] -> c
schedules: 8
assert never a == 0
assert never final mem X[0] == 0
assert consistent
`
	test, err := litmus.ParseString(src)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := litmus.Run(test)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Ok() {
			b.Fatalf("%s", res)
		}
	}
}

// BenchmarkModelChecker runs the exhaustive three-board class
// exploration per iteration.
func BenchmarkModelChecker(b *testing.B) {
	boards := []verify.Chooser{
		verify.ClassChooser{Variant: core.CopyBack},
		verify.ClassChooser{Variant: core.CopyBack},
		verify.ClassChooser{Variant: core.CopyBack},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := verify.Explore(boards); !res.Ok() {
			b.Fatalf("%s", res)
		}
	}
}

// BenchmarkObsRecordingOverhead measures the steady-state wall-clock
// cost of recording the default fbsim workload (moesi, 4 boards) to a
// binary .fbt trace: "off" runs with no recorder, "fbt" runs with a
// process-lifetime recorder feeding a RecordSink, the way fbsim
// -record-out attaches one. The recorder is created outside the timed
// loop because its ring is a one-time allocation, not per-run cost.
// scripts/bench-compare.sh reports the fbt/off ratio and warns when it
// drifts: on a single-core container the drain goroutine cannot
// overlap the simulation, so the ratio is dominated by the emission
// pipeline (event construction, ring push, varint encode), not disk.
func BenchmarkObsRecordingOverhead(b *testing.B) {
	const refs = 2000
	cfg := sim.Homogeneous("moesi", 4)
	run := func(b *testing.B, rec *obs.Recorder) {
		b.Helper()
		c := cfg
		c.Obs = rec
		sys, err := sim.New(c)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.Engine{Sys: sys, Gens: abGens(0.2, 0.3)(sys)}
		if _, err := eng.Run(refs); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("fbt", func(b *testing.B) {
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCoherenceSinkOverhead measures what live coherence
// analytics add on top of recording: "record" is the
// BenchmarkObsRecordingOverhead/fbt configuration, "record+coherence"
// attaches an obshttp.CoherenceSink beside the RecordSink the way
// fbsim -serve does. The delta between the two sub-benchmarks is the
// per-run telemetry cost the /coherence endpoint pays for; BENCH json
// tracks both so drift is visible.
func BenchmarkCoherenceSinkOverhead(b *testing.B) {
	const refs = 2000
	cfg := sim.Homogeneous("moesi", 4)
	run := func(b *testing.B, rec *obs.Recorder) {
		b.Helper()
		c := cfg
		c.Obs = rec
		sys, err := sim.New(c)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.Engine{Sys: sys, Gens: abGens(0.2, 0.3)(sys)}
		if _, err := eng.Run(refs); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("record", func(b *testing.B) {
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("record+coherence", func(b *testing.B) {
		sink := &obshttp.CoherenceSink{}
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}), sink)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		if sink.Totals().StateEvents == 0 {
			b.Fatal("coherence sink saw no state events")
		}
	})
}

// BenchmarkWatchSinkOverhead measures what live runtime verification
// adds on top of recording: "record" is the plain RecordSink
// configuration, "record+watch" attaches an obshttp.WatchSink beside
// it the way fbsim -watch -serve does. bench-compare.sh gates the
// ratio at 10% — a monitored run must stay within a tenth of an
// unmonitored one.
func BenchmarkWatchSinkOverhead(b *testing.B) {
	const refs = 2000
	cfg := sim.Homogeneous("moesi", 4)
	run := func(b *testing.B, rec *obs.Recorder) {
		b.Helper()
		c := cfg
		c.Obs = rec
		sys, err := sim.New(c)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.Engine{Sys: sys, Gens: abGens(0.2, 0.3)(sys)}
		if _, err := eng.Run(refs); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("record", func(b *testing.B) {
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("record+watch", func(b *testing.B) {
		sink := obshttp.NewWatchSink(watch.Config{}, nil)
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}), sink)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		rep := sink.Report()
		if rep.States == 0 {
			b.Fatal("watch sink saw no state events")
		}
		if rep.Total != 0 {
			b.Fatalf("clean benchmark run flagged %d violations; first: %v", rep.Total, rep.First)
		}
	})
}

// BenchmarkPerfSinkOverhead measures what saturation telemetry adds on
// top of recording: "record" is the plain RecordSink configuration,
// "record+perf" attaches an obshttp.PerfSink beside it the way fbsim
// -perf does (nil registry: the sink's own histograms and queue
// reconstruction, no exposition cost). bench-compare.sh gates the
// ratio at 10% — a perf-monitored run must stay within a tenth of a
// record-only one.
func BenchmarkPerfSinkOverhead(b *testing.B) {
	const refs = 2000
	cfg := sim.Homogeneous("moesi", 4)
	run := func(b *testing.B, rec *obs.Recorder) {
		b.Helper()
		c := cfg
		c.Obs = rec
		sys, err := sim.New(c)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.Engine{Sys: sys, Gens: abGens(0.2, 0.3)(sys)}
		if _, err := eng.Run(refs); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("record", func(b *testing.B) {
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("record+perf", func(b *testing.B) {
		sink := obshttp.NewPerfSink(nil)
		rec := obs.New(obs.NewRecordSink(io.Discard, obs.TraceMeta{Fingerprint: "bench"}), sink)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, rec)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		snap := sink.Snapshot()
		if snap.Events == 0 || snap.Latency[perf.MetricTenure].Count == 0 {
			b.Fatal("perf sink saw no events")
		}
	})
}
